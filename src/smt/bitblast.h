// Tseitin bit-blaster: lowers bitvector terms to CNF over the SAT solver.
// Each term is translated once (results cached); gate literals are
// structurally hashed so shared subcircuits produce shared clauses. This is
// the eager QF_BV pipeline of the SMT substrate (DESIGN.md S2).
#pragma once

#include <unordered_map>
#include <vector>

#include "smt/sat.h"
#include "smt/term.h"
#include "support/telemetry.h"

namespace adlsym::smt {

class BitBlaster {
 public:
  BitBlaster(TermManager& tm, SatSolver& sat);

  /// SAT literal representing a width-1 term; encodes the term's cone into
  /// the solver on first use.
  Lit litFor(TermRef t);

  /// Bits of an arbitrary term, LSB first.
  const std::vector<Lit>& bitsFor(TermRef t);

  /// Concrete value of a term under the solver's current model (call only
  /// after SatResult::Sat; the term must have been blasted).
  uint64_t modelValueOf(TermRef t);

  /// Every Var term that has been blasted so far, with its SAT bits. Used to
  /// snapshot a full model right after a Sat answer, before any further
  /// incremental blasting disturbs the assignment trail.
  const std::vector<std::pair<TermId, std::vector<Lit>>>& varTerms() const {
    return varTerms_;
  }

  struct Stats {
    uint64_t gates = 0;      // fresh gate variables introduced
    uint64_t cacheHits = 0;  // structural gate-cache hits
    uint64_t termsBlasted = 0;

    /// Aggregate (fresh-solve mode sums one throwaway blaster per query).
    Stats& operator+=(const Stats& o) {
      gates += o.gates;
      cacheHits += o.cacheHits;
      termsBlasted += o.termsBlasted;
      return *this;
    }
  };
  const Stats& stats() const { return stats_; }

  /// Attach telemetry (null to detach): mirrors gate/term counts into the
  /// blast.gates / blast.terms_blasted registry counters.
  void setTelemetry(telemetry::Telemetry* t);

 private:
  Lit trueLit() const { return trueLit_; }
  Lit falseLit() const { return ~trueLit_; }
  bool isTrueLit(Lit l) const { return l == trueLit_; }
  bool isFalseLit(Lit l) const { return l == ~trueLit_; }

  Lit freshLit();
  Lit mkAnd2(Lit a, Lit b);
  Lit mkOr2(Lit a, Lit b) { return ~mkAnd2(~a, ~b); }
  Lit mkXor2(Lit a, Lit b);
  Lit mkXnor2(Lit a, Lit b) { return ~mkXor2(a, b); }
  Lit mkMux(Lit c, Lit t, Lit e);
  Lit andAll(const std::vector<Lit>& ls);
  Lit orAll(const std::vector<Lit>& ls);

  using Bits = std::vector<Lit>;
  Bits addCirc(const Bits& a, const Bits& b, Lit carryIn);
  Bits negCirc(const Bits& a);
  Bits mulCirc(const Bits& a, const Bits& b);
  /// Restoring divider; outputs quotient and remainder (SMT-LIB div-by-zero
  /// semantics already applied).
  void divremCirc(const Bits& a, const Bits& b, Bits& quot, Bits& rem);
  Bits shiftCirc(Kind kind, const Bits& a, const Bits& sh);
  Lit ultCirc(const Bits& a, const Bits& b);
  Lit uleCirc(const Bits& a, const Bits& b);
  Bits muxBits(Lit c, const Bits& t, const Bits& e);

  const Bits& blast(TermId id);

  TermManager& tm_;
  SatSolver& sat_;
  Lit trueLit_;
  std::unordered_map<TermId, Bits> blasted_;
  std::vector<std::pair<TermId, Bits>> varTerms_;

  struct PairHash {
    size_t operator()(const std::pair<uint32_t, uint32_t>& p) const {
      return (static_cast<uint64_t>(p.first) << 32 | p.second) * 0x9e3779b97f4a7c15ull >> 16;
    }
  };
  std::unordered_map<std::pair<uint32_t, uint32_t>, Lit, PairHash> andCache_;
  std::unordered_map<std::pair<uint32_t, uint32_t>, Lit, PairHash> xorCache_;
  Stats stats_;

  telemetry::Counter* gatesCtr_ = nullptr;
  telemetry::Counter* termsCtr_ = nullptr;
};

}  // namespace adlsym::smt
