// Hash-consed bitvector term DAG — the expression layer of the SMT
// substrate (DESIGN.md S2). Everything is a bitvector of width 1..64;
// booleans are width-1 bitvectors, which keeps the bit-blaster uniform.
//
// Terms are immutable and deduplicated: building the same term twice yields
// the same TermId, so structural equality is pointer equality and the
// symbolic-execution core can share subterms freely across forked states.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <unordered_map>
#include <vector>

#include "support/error.h"

namespace adlsym::smt {

enum class Kind : uint8_t {
  Const,    // aux = value (truncated to width)
  Var,      // aux = index into variable side table
  Not,      // bitwise complement
  Neg,      // two's-complement negation
  And, Or, Xor,
  Add, Sub, Mul,
  UDiv, URem,        // SMT-LIB semantics: udiv(x,0)=all-ones, urem(x,0)=x
  SDiv, SRem,        // round toward zero; by-zero per SMT-LIB translation
  Shl, LShr, AShr,   // shift amount is operand b (same width); >=w shifts
                     // give 0 (Shl/LShr) or sign replication (AShr)
  Concat,            // a is the HIGH part, b the LOW part
  Extract,           // aux = (hi << 8) | lo, inclusive bit range of operand a
  Eq, Ult, Ule, Slt, Sle,  // comparisons; result width 1
  Ite,               // a = condition (width 1), b = then, c = else
};

const char* kindName(Kind k);

/// True for operators whose operand order does not matter.
bool isCommutative(Kind k);

using TermId = uint32_t;
inline constexpr TermId kInvalidTerm = 0xffffffff;

struct TermNode {
  Kind kind;
  uint8_t width;       // result width, 1..64
  TermId a = kInvalidTerm;
  TermId b = kInvalidTerm;
  TermId c = kInvalidTerm;
  uint64_t aux = 0;    // Const value / Var index / Extract range
};

class TermManager;

/// Value-type handle to a term; cheap to copy, compares by identity.
class TermRef {
 public:
  TermRef() = default;
  TermRef(TermManager* mgr, TermId id) : mgr_(mgr), id_(id) {}

  bool valid() const { return mgr_ != nullptr && id_ != kInvalidTerm; }
  TermId id() const { return id_; }
  TermManager* manager() const { return mgr_; }

  Kind kind() const;
  unsigned width() const;
  bool isConst() const { return valid() && kind() == Kind::Const; }
  bool isVar() const { return valid() && kind() == Kind::Var; }
  /// Value of a Const term (already truncated to width).
  uint64_t constValue() const;
  /// True if this is the width-1 constant 1 / 0.
  bool isTrue() const;
  bool isFalse() const;
  TermRef operand(unsigned i) const;

  friend bool operator==(const TermRef& x, const TermRef& y) {
    return x.mgr_ == y.mgr_ && x.id_ == y.id_;
  }
  friend bool operator!=(const TermRef& x, const TermRef& y) { return !(x == y); }

 private:
  TermManager* mgr_ = nullptr;
  TermId id_ = kInvalidTerm;
};

/// Owns all terms. Builder methods simplify aggressively (constant folding,
/// algebraic identities, normalization) before hash-consing — see
/// builder.cpp. The rewriter can be disabled for the E4 ablation.
class TermManager {
 public:
  TermManager() = default;
  TermManager(const TermManager&) = delete;
  TermManager& operator=(const TermManager&) = delete;

  // ---- introspection -------------------------------------------------
  const TermNode& node(TermId id) const { return nodes_[id]; }
  const TermNode& node(TermRef t) const { return nodes_[t.id()]; }
  size_t numTerms() const { return nodes_.size(); }
  size_t numVars() const { return varNames_.size(); }
  const std::string& varName(TermId id) const;
  /// Variable index (dense, creation order) of a Var term.
  uint32_t varIndex(TermId id) const;

  /// When false, builder methods only fold constants and skip all other
  /// rewrites. Used by the E4 simplifier ablation.
  void setRewritingEnabled(bool on) { rewriting_ = on; }
  bool rewritingEnabled() const { return rewriting_; }
  uint64_t rewriteHits() const { return rewriteHits_; }

  // ---- leaf builders -------------------------------------------------
  TermRef mkConst(unsigned width, uint64_t value);
  TermRef mkTrue() { return mkConst(1, 1); }
  TermRef mkFalse() { return mkConst(1, 0); }
  TermRef mkBool(bool b) { return mkConst(1, b ? 1 : 0); }
  /// Variables are hash-consed by (name, width): the same name always
  /// denotes the same variable. Width conflicts are an internal error.
  TermRef mkVar(unsigned width, const std::string& name);

  // ---- unary ---------------------------------------------------------
  TermRef mkNot(TermRef a);
  TermRef mkNeg(TermRef a);

  // ---- binary (equal widths) ------------------------------------------
  TermRef mkAnd(TermRef a, TermRef b);
  TermRef mkOr(TermRef a, TermRef b);
  TermRef mkXor(TermRef a, TermRef b);
  TermRef mkAdd(TermRef a, TermRef b);
  TermRef mkSub(TermRef a, TermRef b);
  TermRef mkMul(TermRef a, TermRef b);
  TermRef mkUDiv(TermRef a, TermRef b);
  TermRef mkURem(TermRef a, TermRef b);
  TermRef mkSDiv(TermRef a, TermRef b);
  TermRef mkSRem(TermRef a, TermRef b);
  TermRef mkShl(TermRef a, TermRef b);
  TermRef mkLShr(TermRef a, TermRef b);
  TermRef mkAShr(TermRef a, TermRef b);

  // ---- structure -------------------------------------------------------
  TermRef mkConcat(TermRef high, TermRef low);
  TermRef mkExtract(TermRef a, unsigned hi, unsigned lo);
  /// Zero/sign extend to `newWidth` (>= current); same term if equal.
  TermRef mkZExt(TermRef a, unsigned newWidth);
  TermRef mkSExt(TermRef a, unsigned newWidth);
  /// Truncate or zero-extend to exactly `newWidth`.
  TermRef mkResize(TermRef a, unsigned newWidth);

  // ---- predicates (width-1 results) ------------------------------------
  TermRef mkEq(TermRef a, TermRef b);
  TermRef mkNe(TermRef a, TermRef b) { return mkNot(mkEq(a, b)); }
  TermRef mkUlt(TermRef a, TermRef b);
  TermRef mkUle(TermRef a, TermRef b);
  TermRef mkUgt(TermRef a, TermRef b) { return mkUlt(b, a); }
  TermRef mkUge(TermRef a, TermRef b) { return mkUle(b, a); }
  TermRef mkSlt(TermRef a, TermRef b);
  TermRef mkSle(TermRef a, TermRef b);
  TermRef mkSgt(TermRef a, TermRef b) { return mkSlt(b, a); }
  TermRef mkSge(TermRef a, TermRef b) { return mkSle(b, a); }
  TermRef mkImplies(TermRef a, TermRef b) { return mkOr(mkNot(a), b); }

  TermRef mkIte(TermRef cond, TermRef thenT, TermRef elseT);

  // ---- concrete evaluation --------------------------------------------
  /// Fold one operator application on concrete values (SMT-LIB semantics,
  /// results truncated to `width`). `b`/`aux` as appropriate per kind.
  static uint64_t evalOp(Kind k, unsigned width, uint64_t a, uint64_t b,
                         uint64_t aux = 0);

  /// Evaluate a term under a variable assignment (by Var index). Missing
  /// variables evaluate to 0. Memoized across one call.
  uint64_t evalWith(TermRef t,
                    const std::function<uint64_t(uint32_t)>& varValue) const;

  // ---- cross-pool migration -------------------------------------------
  /// Deep-copy a term owned by *another* manager into this one,
  /// preserving structure exactly (raw interning, no re-simplification —
  /// the source was already built through the simplifying builders, and
  /// byte-identical structure across pools is what the parallel
  /// explorer's determinism rests on). Variables are re-consed by
  /// (name, width). `memo` carries sharing across several imports of one
  /// batch (e.g. all terms of one migrated state). Neither manager may be
  /// mutated concurrently during the call.
  TermRef import(TermRef src, std::unordered_map<TermId, TermId>& memo);
  TermRef import(TermRef src) {
    std::unordered_map<TermId, TermId> memo;
    return import(src, memo);
  }

  /// Hash-cons one operator node exactly as written, for deserializers
  /// (smt/termio): no simplification, same raw path import() uses, so a
  /// serialized DAG restores structure-identically. Operands must already
  /// live in this pool; Const/Var must go through mkConst/mkVar instead
  /// (they maintain the value/name side tables).
  TermRef internRaw(Kind kind, unsigned width, TermId a = kInvalidTerm,
                    TermId b = kInvalidTerm, TermId c = kInvalidTerm,
                    uint64_t aux = 0) {
    check(kind != Kind::Const && kind != Kind::Var,
          "internRaw: leaf terms go through mkConst/mkVar");
    return intern(kind, width, a, b, c, aux);
  }

 private:
  friend class TermRef;

  struct NodeKey {
    Kind kind;
    uint8_t width;
    TermId a, b, c;
    uint64_t aux;
    bool operator==(const NodeKey& o) const {
      return kind == o.kind && width == o.width && a == o.a && b == o.b &&
             c == o.c && aux == o.aux;
    }
  };
  struct NodeKeyHash {
    size_t operator()(const NodeKey& k) const {
      uint64_t h = static_cast<uint64_t>(k.kind) * 0x9e3779b97f4a7c15ull;
      h ^= (h >> 29) ^ (static_cast<uint64_t>(k.width) << 56);
      h = h * 31 + k.a;
      h = h * 31 + k.b;
      h = h * 31 + k.c;
      h = h * 31 + k.aux;
      return static_cast<size_t>(h ^ (h >> 32));
    }
  };

  /// Hash-cons a node (no simplification).
  TermRef intern(Kind kind, unsigned width, TermId a = kInvalidTerm,
                 TermId b = kInvalidTerm, TermId c = kInvalidTerm,
                 uint64_t aux = 0);

  // Simplification helpers (builder.cpp).
  TermRef foldBinary(Kind k, TermRef a, TermRef b);
  bool rewriteOn() const { return rewriting_; }
  TermRef noteRewrite(TermRef t) { ++rewriteHits_; return t; }

  std::vector<TermNode> nodes_;
  std::unordered_map<NodeKey, TermId, NodeKeyHash> internMap_;
  std::vector<std::string> varNames_;
  std::unordered_map<std::string, TermId> varMap_;
  bool rewriting_ = true;
  uint64_t rewriteHits_ = 0;
};

// ---- TermRef inline definitions that need TermManager ----------------
inline Kind TermRef::kind() const { return mgr_->node(id_).kind; }
inline unsigned TermRef::width() const { return mgr_->node(id_).width; }
inline uint64_t TermRef::constValue() const {
  check(isConst(), "constValue on non-constant term");
  return mgr_->node(id_).aux;
}
inline bool TermRef::isTrue() const {
  return isConst() && width() == 1 && constValue() == 1;
}
inline bool TermRef::isFalse() const {
  return isConst() && width() == 1 && constValue() == 0;
}
inline TermRef TermRef::operand(unsigned i) const {
  const TermNode& n = mgr_->node(id_);
  const TermId ids[3] = {n.a, n.b, n.c};
  check(i < 3 && ids[i] != kInvalidTerm, "operand index out of range");
  return TermRef(mgr_, ids[i]);
}

}  // namespace adlsym::smt
