// Canonical order-preserving term-DAG serialization (adlsym-ckpt-v1,
// docs/robustness.md). A TermTableWriter assigns dense slots to every
// distinct node reachable from the roots it is given, in first-visit
// post-order, and renders one descriptor per slot:
//
//   C<width>:<value>;          constant (value already truncated to width)
//   V<width>:<name>;           variable (re-consed by name on restore)
//   O<kind>:<width>:<a>,<b>,<c>:<aux>;   operator, '-' = absent operand
//
// Slots only reference earlier slots, so the reader can intern a table in
// one left-to-right pass. Roots may come from *different* TermManager
// pools (parallel workers): structurally equal terms from distinct pools
// collapse to one slot, because the writer deduplicates by importing
// everything into a private scratch pool (hash-consing does the rest).
// That is what makes checkpoint bytes identical across -j1/-j2/-j8.
//
// Round-trip contract (ckpt_test): read(table) into a fresh pool, then
// re-serialize the same roots in the same order — byte-identical table.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "smt/term.h"

namespace adlsym::smt {

class TermTableWriter {
 public:
  TermTableWriter() = default;

  /// Slot of `t`, assigning slots to (and describing) any nodes not seen
  /// yet. `t` may belong to any pool; repeated and structurally equal
  /// terms share one slot.
  uint32_t slot(TermRef t);

  /// Concatenated descriptors for every slot assigned so far.
  const std::string& table() const { return table_; }

  /// Number of slots assigned so far.
  size_t size() const { return scratch_.numTerms(); }

 private:
  TermManager scratch_;
  // One import memo per source pool; keeps sharing exact across many
  // slot() calls for states owned by the same worker.
  std::unordered_map<const TermManager*, std::unordered_map<TermId, TermId>>
      memos_;
  uint32_t described_ = 0;  // scratch ids [0, described_) already rendered
  std::string table_;
};

class TermTableReader {
 public:
  /// Parse a descriptor table and intern every slot into `tm` (which need
  /// not be empty — nodes hash-cons against what is already there).
  /// Returns the slot -> term mapping. Throws InputError on any malformed
  /// descriptor, with the slot index in the message.
  static std::vector<TermRef> read(std::string_view table, TermManager& tm);
};

}  // namespace adlsym::smt
