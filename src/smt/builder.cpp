// Simplifying term builders. Every mk* method first tries constant folding,
// then (if rewriting is enabled) a set of local algebraic rewrites, and only
// then hash-conses a new node. The rewrites here are the ones that pay off
// on symbolic-execution workloads: machine code constantly materializes
// `x + 0`, `x & 0xff`, double extracts from extends, and branch conditions
// comparing a fresh ite against a constant.
#include "smt/term.h"
#include "support/bits.h"

namespace adlsym::smt {

namespace {
bool isAllOnes(TermRef t) {
  return t.isConst() && t.constValue() == lowMask(t.width());
}
bool isZero(TermRef t) { return t.isConst() && t.constValue() == 0; }
bool isOne(TermRef t) { return t.isConst() && t.constValue() == 1; }
}  // namespace

TermRef TermManager::foldBinary(Kind k, TermRef a, TermRef b) {
  check(a.manager() == this && b.manager() == this, "foreign term operand");
  const unsigned opW = a.width();
  unsigned resW = opW;
  switch (k) {
    case Kind::Eq: case Kind::Ult: case Kind::Ule:
    case Kind::Slt: case Kind::Sle:
      resW = 1;
      break;
    default:
      break;
  }
  check(a.width() == b.width(), "binary operand width mismatch");
  if (a.isConst() && b.isConst()) {
    return mkConst(resW, evalOp(k, opW, a.constValue(), b.constValue()));
  }
  // Normalize commutative operators: constant (or lower id) on the right so
  // that x+c and c+x intern to the same node.
  if (rewriteOn() && isCommutative(k)) {
    if (a.isConst() || (!b.isConst() && a.id() > b.id())) std::swap(a, b);
  }
  return TermRef();  // not folded
}

TermRef TermManager::mkNot(TermRef a) {
  if (a.isConst()) return mkConst(a.width(), ~a.constValue());
  if (rewriteOn()) {
    const TermNode& n = node(a);
    if (n.kind == Kind::Not) return noteRewrite(TermRef(this, n.a));
    // De-sugar not(cmp) into the complementary comparison: keeps branch
    // conditions in canonical form so both fork directions share structure.
    if (a.width() == 1) {
      switch (n.kind) {
        case Kind::Ult: return noteRewrite(mkUle(TermRef(this, n.b), TermRef(this, n.a)));
        case Kind::Ule: return noteRewrite(mkUlt(TermRef(this, n.b), TermRef(this, n.a)));
        case Kind::Slt: return noteRewrite(mkSle(TermRef(this, n.b), TermRef(this, n.a)));
        case Kind::Sle: return noteRewrite(mkSlt(TermRef(this, n.b), TermRef(this, n.a)));
        default: break;
      }
    }
  }
  return intern(Kind::Not, a.width(), a.id());
}

TermRef TermManager::mkNeg(TermRef a) {
  if (a.isConst()) return mkConst(a.width(), 0 - a.constValue());
  if (rewriteOn()) {
    const TermNode& n = node(a);
    if (n.kind == Kind::Neg) return noteRewrite(TermRef(this, n.a));
  }
  return intern(Kind::Neg, a.width(), a.id());
}

TermRef TermManager::mkAnd(TermRef a, TermRef b) {
  if (TermRef f = foldBinary(Kind::And, a, b); f.valid()) return f;
  if (rewriteOn()) {
    if (a.isConst() || (!b.isConst() && a.id() > b.id())) std::swap(a, b);
    if (isZero(b)) return noteRewrite(mkConst(a.width(), 0));
    if (isAllOnes(b)) return noteRewrite(a);
    if (a == b) return noteRewrite(a);
    // x & ~x == 0 (catches boolean contradictions early)
    const TermNode& nb = node(b);
    if (nb.kind == Kind::Not && nb.a == a.id()) return noteRewrite(mkConst(a.width(), 0));
    const TermNode& na = node(a);
    if (na.kind == Kind::Not && na.a == b.id()) return noteRewrite(mkConst(a.width(), 0));
  }
  return intern(Kind::And, a.width(), a.id(), b.id());
}

TermRef TermManager::mkOr(TermRef a, TermRef b) {
  if (TermRef f = foldBinary(Kind::Or, a, b); f.valid()) return f;
  if (rewriteOn()) {
    if (a.isConst() || (!b.isConst() && a.id() > b.id())) std::swap(a, b);
    if (isZero(b)) return noteRewrite(a);
    if (isAllOnes(b)) return noteRewrite(mkConst(a.width(), lowMask(a.width())));
    if (a == b) return noteRewrite(a);
    const TermNode& nb = node(b);
    if (nb.kind == Kind::Not && nb.a == a.id())
      return noteRewrite(mkConst(a.width(), lowMask(a.width())));
    const TermNode& na = node(a);
    if (na.kind == Kind::Not && na.a == b.id())
      return noteRewrite(mkConst(a.width(), lowMask(a.width())));
  }
  return intern(Kind::Or, a.width(), a.id(), b.id());
}

TermRef TermManager::mkXor(TermRef a, TermRef b) {
  if (TermRef f = foldBinary(Kind::Xor, a, b); f.valid()) return f;
  if (rewriteOn()) {
    if (a.isConst() || (!b.isConst() && a.id() > b.id())) std::swap(a, b);
    if (isZero(b)) return noteRewrite(a);
    if (isAllOnes(b)) return noteRewrite(mkNot(a));
    if (a == b) return noteRewrite(mkConst(a.width(), 0));
  }
  return intern(Kind::Xor, a.width(), a.id(), b.id());
}

TermRef TermManager::mkAdd(TermRef a, TermRef b) {
  if (TermRef f = foldBinary(Kind::Add, a, b); f.valid()) return f;
  if (rewriteOn()) {
    if (a.isConst() || (!b.isConst() && a.id() > b.id())) std::swap(a, b);
    if (isZero(b)) return noteRewrite(a);
    // (x + c1) + c2  ->  x + (c1+c2): collapses PC-relative address chains.
    const TermNode& na = node(a);
    if (b.isConst() && na.kind == Kind::Add && node(na.b).kind == Kind::Const) {
      const uint64_t c = node(na.b).aux + b.constValue();
      // Copy out of the node pool before mkConst can reallocate it.
      const TermId x = na.a;
      return noteRewrite(mkAdd(TermRef(this, x), mkConst(a.width(), c)));
    }
  }
  return intern(Kind::Add, a.width(), a.id(), b.id());
}

TermRef TermManager::mkSub(TermRef a, TermRef b) {
  if (TermRef f = foldBinary(Kind::Sub, a, b); f.valid()) return f;
  if (rewriteOn()) {
    if (isZero(b)) return noteRewrite(a);
    if (isZero(a)) return noteRewrite(mkNeg(b));
    if (a == b) return noteRewrite(mkConst(a.width(), 0));
    // x - c  ->  x + (-c): lets the Add chain-collapse rule fire.
    if (b.isConst())
      return noteRewrite(mkAdd(a, mkConst(a.width(), 0 - b.constValue())));
  }
  return intern(Kind::Sub, a.width(), a.id(), b.id());
}

TermRef TermManager::mkMul(TermRef a, TermRef b) {
  if (TermRef f = foldBinary(Kind::Mul, a, b); f.valid()) return f;
  if (rewriteOn()) {
    if (a.isConst() || (!b.isConst() && a.id() > b.id())) std::swap(a, b);
    if (isZero(b)) return noteRewrite(mkConst(a.width(), 0));
    if (isOne(b)) return noteRewrite(a);
    // x * 2^k -> x << k (cheaper to bit-blast)
    if (b.isConst() && b.constValue() != 0 &&
        (b.constValue() & (b.constValue() - 1)) == 0) {
      unsigned k = 0;
      while ((b.constValue() >> k) != 1) ++k;
      return noteRewrite(mkShl(a, mkConst(a.width(), k)));
    }
  }
  return intern(Kind::Mul, a.width(), a.id(), b.id());
}

TermRef TermManager::mkUDiv(TermRef a, TermRef b) {
  if (TermRef f = foldBinary(Kind::UDiv, a, b); f.valid()) return f;
  if (rewriteOn()) {
    if (isOne(b)) return noteRewrite(a);
    if (b.isConst() && b.constValue() != 0 &&
        (b.constValue() & (b.constValue() - 1)) == 0) {
      unsigned k = 0;
      while ((b.constValue() >> k) != 1) ++k;
      return noteRewrite(mkLShr(a, mkConst(a.width(), k)));
    }
  }
  return intern(Kind::UDiv, a.width(), a.id(), b.id());
}

TermRef TermManager::mkURem(TermRef a, TermRef b) {
  if (TermRef f = foldBinary(Kind::URem, a, b); f.valid()) return f;
  if (rewriteOn()) {
    if (isOne(b)) return noteRewrite(mkConst(a.width(), 0));
    if (b.isConst() && b.constValue() != 0 &&
        (b.constValue() & (b.constValue() - 1)) == 0) {
      return noteRewrite(mkAnd(a, mkConst(a.width(), b.constValue() - 1)));
    }
  }
  return intern(Kind::URem, a.width(), a.id(), b.id());
}

TermRef TermManager::mkSDiv(TermRef a, TermRef b) {
  if (TermRef f = foldBinary(Kind::SDiv, a, b); f.valid()) return f;
  if (rewriteOn() && isOne(b)) return noteRewrite(a);
  return intern(Kind::SDiv, a.width(), a.id(), b.id());
}

TermRef TermManager::mkSRem(TermRef a, TermRef b) {
  if (TermRef f = foldBinary(Kind::SRem, a, b); f.valid()) return f;
  if (rewriteOn() && isOne(b)) return noteRewrite(mkConst(a.width(), 0));
  return intern(Kind::SRem, a.width(), a.id(), b.id());
}

TermRef TermManager::mkShl(TermRef a, TermRef b) {
  if (TermRef f = foldBinary(Kind::Shl, a, b); f.valid()) return f;
  if (rewriteOn()) {
    if (isZero(b)) return noteRewrite(a);
    if (isZero(a)) return noteRewrite(a);
    if (b.isConst() && b.constValue() >= a.width())
      return noteRewrite(mkConst(a.width(), 0));
  }
  return intern(Kind::Shl, a.width(), a.id(), b.id());
}

TermRef TermManager::mkLShr(TermRef a, TermRef b) {
  if (TermRef f = foldBinary(Kind::LShr, a, b); f.valid()) return f;
  if (rewriteOn()) {
    if (isZero(b)) return noteRewrite(a);
    if (isZero(a)) return noteRewrite(a);
    if (b.isConst() && b.constValue() >= a.width())
      return noteRewrite(mkConst(a.width(), 0));
  }
  return intern(Kind::LShr, a.width(), a.id(), b.id());
}

TermRef TermManager::mkAShr(TermRef a, TermRef b) {
  if (TermRef f = foldBinary(Kind::AShr, a, b); f.valid()) return f;
  if (rewriteOn()) {
    if (isZero(b)) return noteRewrite(a);
    if (isZero(a)) return noteRewrite(a);
  }
  return intern(Kind::AShr, a.width(), a.id(), b.id());
}

TermRef TermManager::mkConcat(TermRef high, TermRef low) {
  check(high.manager() == this && low.manager() == this, "foreign term operand");
  const unsigned w = high.width() + low.width();
  check(w <= 64, "concat result exceeds 64 bits");
  if (high.isConst() && low.isConst()) {
    return mkConst(w, (high.constValue() << low.width()) | low.constValue());
  }
  if (rewriteOn()) {
    // concat(extract(x, hi, m+1), extract(x, m, lo)) -> extract(x, hi, lo)
    const TermNode& nh = node(high);
    const TermNode& nl = node(low);
    if (nh.kind == Kind::Extract && nl.kind == Kind::Extract && nh.a == nl.a) {
      const unsigned hHi = static_cast<unsigned>(nh.aux >> 8);
      const unsigned hLo = static_cast<unsigned>(nh.aux & 0xff);
      const unsigned lHi = static_cast<unsigned>(nl.aux >> 8);
      const unsigned lLo = static_cast<unsigned>(nl.aux & 0xff);
      if (hLo == lHi + 1)
        return noteRewrite(mkExtract(TermRef(this, nh.a), hHi, lLo));
    }
  }
  return intern(Kind::Concat, w, high.id(), low.id());
}

TermRef TermManager::mkExtract(TermRef a, unsigned hi, unsigned lo) {
  check(a.manager() == this, "foreign term operand");
  check(hi >= lo && hi < a.width(), "extract range out of bounds");
  const unsigned w = hi - lo + 1;
  if (w == a.width()) return a;
  if (a.isConst()) return mkConst(w, bitSlice(a.constValue(), hi, lo));
  if (rewriteOn()) {
    const TermNode& n = node(a);
    // extract of extract composes.
    if (n.kind == Kind::Extract) {
      const unsigned iLo = static_cast<unsigned>(n.aux & 0xff);
      return noteRewrite(mkExtract(TermRef(this, n.a), iLo + hi, iLo + lo));
    }
    // extract entirely within one half of a concat.
    if (n.kind == Kind::Concat) {
      TermRef h(this, n.a);
      TermRef l(this, n.b);
      if (hi < l.width()) return noteRewrite(mkExtract(l, hi, lo));
      if (lo >= l.width())
        return noteRewrite(mkExtract(h, hi - l.width(), lo - l.width()));
    }
    // extract of ite pushes inside (conditions stay width-1).
    if (n.kind == Kind::Ite) {
      // Copy out of the node pool: the inner mkExtract calls can
      // reallocate it and invalidate `n`.
      const TermId c = n.a, t = n.b, e = n.c;
      return noteRewrite(mkIte(TermRef(this, c),
                               mkExtract(TermRef(this, t), hi, lo),
                               mkExtract(TermRef(this, e), hi, lo)));
    }
  }
  return intern(Kind::Extract, w, a.id(), kInvalidTerm, kInvalidTerm,
                (static_cast<uint64_t>(hi) << 8) | lo);
}

TermRef TermManager::mkZExt(TermRef a, unsigned newWidth) {
  check(newWidth >= a.width(), "zext must not shrink");
  if (newWidth == a.width()) return a;
  return mkConcat(mkConst(newWidth - a.width(), 0), a);
}

TermRef TermManager::mkSExt(TermRef a, unsigned newWidth) {
  check(newWidth >= a.width(), "sext must not shrink");
  if (newWidth == a.width()) return a;
  const unsigned extra = newWidth - a.width();
  TermRef sign = mkExtract(a, a.width() - 1, a.width() - 1);
  TermRef fill = mkIte(sign, mkConst(extra, lowMask(extra)), mkConst(extra, 0));
  return mkConcat(fill, a);
}

TermRef TermManager::mkResize(TermRef a, unsigned newWidth) {
  if (newWidth == a.width()) return a;
  if (newWidth < a.width()) return mkExtract(a, newWidth - 1, 0);
  return mkZExt(a, newWidth);
}

TermRef TermManager::mkEq(TermRef a, TermRef b) {
  if (TermRef f = foldBinary(Kind::Eq, a, b); f.valid()) return f;
  if (rewriteOn()) {
    if (a.isConst() || (!b.isConst() && a.id() > b.id())) std::swap(a, b);
    if (a == b) return noteRewrite(mkTrue());
    if (a.width() == 1) {
      // (x == true) -> x ; (x == false) -> !x
      if (b.isTrue()) return noteRewrite(a);
      if (b.isFalse()) return noteRewrite(mkNot(a));
      if (a.isTrue()) return noteRewrite(b);
      if (a.isFalse()) return noteRewrite(mkNot(b));
    }
    // ite(c, k1, k2) == k  resolves when k1/k2/k are constants.
    const TermNode& na = node(a);
    if (na.kind == Kind::Ite && b.isConst()) {
      TermRef t(this, na.b);
      TermRef e(this, na.c);
      if (t.isConst() && e.isConst()) {
        const bool tHit = t.constValue() == b.constValue();
        const bool eHit = e.constValue() == b.constValue();
        TermRef c(this, na.a);
        if (tHit && eHit) return noteRewrite(mkTrue());
        if (tHit && !eHit) return noteRewrite(c);
        if (!tHit && eHit) return noteRewrite(mkNot(c));
        return noteRewrite(mkFalse());
      }
    }
  }
  return intern(Kind::Eq, 1, a.id(), b.id());
}

TermRef TermManager::mkUlt(TermRef a, TermRef b) {
  if (TermRef f = foldBinary(Kind::Ult, a, b); f.valid()) return f;
  if (rewriteOn()) {
    if (a == b) return noteRewrite(mkFalse());
    if (isZero(b)) return noteRewrite(mkFalse());      // x < 0 never
    if (isAllOnes(a)) return noteRewrite(mkFalse());   // max < x never
    if (isZero(a)) return noteRewrite(mkNot(mkEq(b, mkConst(b.width(), 0))));
  }
  return intern(Kind::Ult, 1, a.id(), b.id());
}

TermRef TermManager::mkUle(TermRef a, TermRef b) {
  if (TermRef f = foldBinary(Kind::Ule, a, b); f.valid()) return f;
  if (rewriteOn()) {
    if (a == b) return noteRewrite(mkTrue());
    if (isZero(a)) return noteRewrite(mkTrue());
    if (isAllOnes(b)) return noteRewrite(mkTrue());
  }
  return intern(Kind::Ule, 1, a.id(), b.id());
}

TermRef TermManager::mkSlt(TermRef a, TermRef b) {
  if (TermRef f = foldBinary(Kind::Slt, a, b); f.valid()) return f;
  if (rewriteOn() && a == b) return noteRewrite(mkFalse());
  return intern(Kind::Slt, 1, a.id(), b.id());
}

TermRef TermManager::mkSle(TermRef a, TermRef b) {
  if (TermRef f = foldBinary(Kind::Sle, a, b); f.valid()) return f;
  if (rewriteOn() && a == b) return noteRewrite(mkTrue());
  return intern(Kind::Sle, 1, a.id(), b.id());
}

TermRef TermManager::mkIte(TermRef cond, TermRef thenT, TermRef elseT) {
  check(cond.manager() == this && thenT.manager() == this &&
            elseT.manager() == this, "foreign term operand");
  check(cond.width() == 1, "ite condition must be width 1");
  check(thenT.width() == elseT.width(), "ite arm width mismatch");
  if (cond.isConst()) return cond.constValue() ? thenT : elseT;
  if (rewriteOn()) {
    if (thenT == elseT) return noteRewrite(thenT);
    if (thenT.width() == 1) {
      // Boolean ites lower to and/or — blasts smaller.
      if (thenT.isTrue() && elseT.isFalse()) return noteRewrite(cond);
      if (thenT.isFalse() && elseT.isTrue()) return noteRewrite(mkNot(cond));
      if (thenT.isTrue()) return noteRewrite(mkOr(cond, elseT));
      if (thenT.isFalse()) return noteRewrite(mkAnd(mkNot(cond), elseT));
      if (elseT.isTrue()) return noteRewrite(mkOr(mkNot(cond), thenT));
      if (elseT.isFalse()) return noteRewrite(mkAnd(cond, thenT));
    }
    // ite(!c, a, b) -> ite(c, b, a)
    const TermNode& nc = node(cond);
    if (nc.kind == Kind::Not)
      return noteRewrite(mkIte(TermRef(this, nc.a), elseT, thenT));
    // Nested same-condition ites collapse.
    const TermNode& nt = node(thenT);
    if (nt.kind == Kind::Ite && nt.a == cond.id())
      return noteRewrite(mkIte(cond, TermRef(this, nt.b), elseT));
    const TermNode& ne = node(elseT);
    if (ne.kind == Kind::Ite && ne.a == cond.id())
      return noteRewrite(mkIte(cond, thenT, TermRef(this, ne.c)));
  }
  return intern(Kind::Ite, thenT.width(), cond.id(), thenT.id(), elseT.id());
}

}  // namespace adlsym::smt
