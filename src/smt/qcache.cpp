#include "smt/qcache.h"

#include <algorithm>

#include "smt/solver.h"
#include "support/json.h"

namespace adlsym::smt {

namespace {

void appendNum(std::string& out, uint64_t v) {
  char buf[24];
  char* p = buf + sizeof buf;
  do {
    *--p = static_cast<char>('0' + v % 10);
    v /= 10;
  } while (v != 0);
  out.append(p, buf + sizeof buf);
}

void appendRef(std::string& out, TermId id,
               const std::unordered_map<TermId, size_t>& memo) {
  if (id == kInvalidTerm) {
    out += '-';
    return;
  }
  appendNum(out, memo.at(id));
}

enum class VarMode : uint8_t {
  Blind,  // "V<w>:?"       — name-independent sort key
  Named,  // "V<w>:<name>"  — within-pool deterministic tie-break
  Slot,   // "V<w>:@<slot>" — α-renamed final key
};

/// Append post-order descriptors of every node under `root` not already in
/// `memo`; returns root's local index. Local indices are emission order,
/// so the serialization is DAG-shared: a subterm reachable twice is
/// defined once and referenced by index.
size_t serializeTerm(const TermManager& tm, TermId root, VarMode mode,
                     std::unordered_map<TermId, size_t>& memo,
                     std::string& out,
                     std::unordered_map<std::string, size_t>* slotByName,
                     std::vector<TermRef>* slotVars, TermManager* mgr) {
  std::vector<TermId> stack{root};
  while (!stack.empty()) {
    const TermId id = stack.back();
    if (memo.count(id) != 0) {
      stack.pop_back();
      continue;
    }
    const TermNode& n = tm.node(id);
    const TermId ops[3] = {n.a, n.b, n.c};
    bool ready = true;
    for (const TermId o : ops) {
      if (o != kInvalidTerm && memo.count(o) == 0) {
        stack.push_back(o);
        ready = false;
      }
    }
    if (!ready) continue;
    stack.pop_back();
    switch (n.kind) {
      case Kind::Const:
        out += 'C';
        appendNum(out, n.width);
        out += ':';
        appendNum(out, n.aux);
        break;
      case Kind::Var:
        out += 'V';
        appendNum(out, n.width);
        out += ':';
        switch (mode) {
          case VarMode::Blind:
            out += '?';
            break;
          case VarMode::Named:
            out += tm.varName(id);
            break;
          case VarMode::Slot: {
            const std::string& name = tm.varName(id);
            auto [it, inserted] =
                slotByName->try_emplace(name, slotByName->size());
            if (inserted && slotVars != nullptr) {
              slotVars->push_back(TermRef(mgr, id));
            }
            out += '@';
            appendNum(out, it->second);
            break;
          }
        }
        break;
      default:
        out += 'O';
        appendNum(out, static_cast<uint64_t>(n.kind));
        out += ':';
        appendNum(out, n.width);
        out += ':';
        appendRef(out, n.a, memo);
        out += ',';
        appendRef(out, n.b, memo);
        out += ',';
        appendRef(out, n.c, memo);
        out += ':';
        appendNum(out, n.aux);
        break;
    }
    out += ';';
    memo.emplace(id, memo.size());
  }
  return memo.at(root);
}

}  // namespace

std::string QueryCache::canonicalKey(const std::vector<TermRef>& permanent,
                                     const std::vector<TermRef>& assumptions,
                                     std::vector<TermRef>* slotVars) {
  if (slotVars != nullptr) slotVars->clear();
  // The query is the *set* permanent ∪ assumptions; order and duplicates
  // don't affect satisfiability. Within one pool, structural equality is
  // id equality, so de-duplicating ids de-duplicates structure.
  std::vector<TermRef> terms;
  terms.reserve(permanent.size() + assumptions.size());
  for (const TermRef t : permanent) {
    if (t.valid() && !t.isTrue()) terms.push_back(t);
  }
  for (const TermRef t : assumptions) {
    if (t.valid() && !t.isTrue()) terms.push_back(t);
  }
  if (terms.empty()) return std::string();
  TermManager* mgr = terms.front().manager();
  {
    std::vector<TermId> ids;
    ids.reserve(terms.size());
    for (const TermRef t : terms) ids.push_back(t.id());
    std::sort(ids.begin(), ids.end());
    ids.erase(std::unique(ids.begin(), ids.end()), ids.end());
    terms.clear();
    for (const TermId id : ids) terms.push_back(TermRef(mgr, id));
  }

  // Pass 1: per-constraint sort keys. Primary key is name-*blind* so the
  // order (and hence the α-renaming below) is invariant under variable
  // renamings that don't collide structurally; the name-aware secondary
  // key keeps the order deterministic within one pool.
  struct Item {
    std::string blind;
    std::string named;
    TermId id;
  };
  std::vector<Item> items;
  items.reserve(terms.size());
  for (const TermRef t : terms) {
    Item it;
    it.id = t.id();
    std::unordered_map<TermId, size_t> memo;
    serializeTerm(*mgr, t.id(), VarMode::Blind, memo, it.blind, nullptr,
                  nullptr, nullptr);
    memo.clear();
    serializeTerm(*mgr, t.id(), VarMode::Named, memo, it.named, nullptr,
                  nullptr, nullptr);
    items.push_back(std::move(it));
  }
  std::sort(items.begin(), items.end(), [](const Item& a, const Item& b) {
    if (a.blind != b.blind) return a.blind < b.blind;
    return a.named < b.named;
  });

  // Pass 2: one global DAG walk over the sorted set, variables α-renamed
  // to dense slots in first-occurrence order.
  std::string key;
  std::unordered_map<TermId, size_t> memo;
  std::unordered_map<std::string, size_t> slotByName;
  for (const Item& it : items) {
    const size_t root = serializeTerm(*mgr, it.id, VarMode::Slot, memo, key,
                                      &slotByName, slotVars, mgr);
    key += 'R';
    appendNum(key, root);
    key += ';';
  }
  return key;
}

QueryCache::Outcome QueryCache::acquire(const std::string& key) {
  std::unique_lock<std::mutex> lk(mu_);
  for (;;) {
    auto it = map_.find(key);
    if (it == map_.end()) {
      map_.emplace(key, Entry{});  // in-flight marker; caller owns
      ++stats_.misses;
      return Outcome{};
    }
    if (it->second.done) {
      ++stats_.hits;
      Outcome o;
      o.hit = true;
      o.result = it->second.result;
      o.slotValues = it->second.slotValues;
      o.cost = it->second.cost;
      o.hasModel = it->second.hasModel;
      o.preTag = it->second.preTag;
      return o;
    }
    // In flight on another thread: wait for publish()/abandon(), then
    // re-examine (an abandoned key makes this caller the next owner).
    ++stats_.inflightWaits;
    cv_.wait(lk, [&] {
      auto cur = map_.find(key);
      return cur == map_.end() || cur->second.done;
    });
  }
}

void QueryCache::publish(const std::string& key, CheckResult result,
                         std::vector<uint64_t> slotValues, QueryCost cost,
                         uint8_t preTag, bool hasModel) {
  std::lock_guard<std::mutex> lk(mu_);
  Entry& e = map_[key];
  e.done = true;
  e.result = result;
  e.slotValues = std::move(slotValues);
  e.cost = cost;
  e.preTag = preTag;
  e.hasModel = hasModel;
  fifo_.push_back(key);
  if (capacity_ != 0) {
    while (fifo_.size() > capacity_) {
      map_.erase(fifo_.front());
      fifo_.pop_front();
      ++stats_.evictions;
    }
  }
  cv_.notify_all();
}

void QueryCache::backfillModel(const std::string& key,
                               std::vector<uint64_t> slotValues) {
  std::lock_guard<std::mutex> lk(mu_);
  auto it = map_.find(key);
  if (it == map_.end() || !it->second.done || it->second.hasModel ||
      it->second.result != CheckResult::Sat) {
    return;
  }
  it->second.slotValues = std::move(slotValues);
  it->second.hasModel = true;
}

void QueryCache::abandon(const std::string& key) {
  std::lock_guard<std::mutex> lk(mu_);
  auto it = map_.find(key);
  if (it != map_.end() && !it->second.done) map_.erase(it);
  cv_.notify_all();
}

void QueryCache::writeCkptJson(json::Writer& w) const {
  std::lock_guard<std::mutex> lk(mu_);
  std::vector<const std::string*> keys;
  keys.reserve(map_.size());
  for (const auto& [key, e] : map_) {
    if (e.done) keys.push_back(&key);
  }
  std::sort(keys.begin(), keys.end(),
            [](const std::string* a, const std::string* b) { return *a < *b; });
  w.beginObject();
  w.kv("hits", stats_.hits);
  w.kv("misses", stats_.misses);
  w.kv("evictions", stats_.evictions);
  w.key("entries").beginArray();
  for (const std::string* key : keys) {
    const Entry& e = map_.at(*key);
    w.beginObject();
    w.kv("k", std::string_view(*key));
    w.kv("r", e.result == CheckResult::Sat ? "sat" : "unsat");
    w.key("m").beginArray();
    for (const uint64_t v : e.slotValues) w.value(v);
    w.endArray();
    w.key("c").beginArray();
    w.value(e.cost.terms).value(e.cost.gates).value(e.cost.conflicts);
    w.endArray();
    w.kv("hm", e.hasModel);
    w.kv("p", static_cast<uint64_t>(e.preTag));
    w.endObject();
  }
  w.endArray();
  w.endObject();
}

void QueryCache::restoreFromCkpt(const json::Value& v) {
  const auto u64 = [&](const char* name) -> uint64_t {
    const json::Value* f = v.find(name);
    if (f == nullptr) {
      throw InputError(std::string("qcache section: missing '") + name + "'");
    }
    return f->asU64();
  };
  const json::Value* entries = v.find("entries");
  if (entries == nullptr || !entries->isArray()) {
    throw InputError("qcache section: missing 'entries' array");
  }
  std::lock_guard<std::mutex> lk(mu_);
  stats_.hits = u64("hits");
  stats_.misses = u64("misses");
  stats_.evictions = u64("evictions");
  for (const json::Value& ev : entries->array) {
    const json::Value* key = ev.find("k");
    const json::Value* result = ev.find("r");
    const json::Value* model = ev.find("m");
    const json::Value* cost = ev.find("c");
    if (key == nullptr || !key->isString() || result == nullptr ||
        model == nullptr || !model->isArray() || cost == nullptr ||
        !cost->isArray() || cost->array.size() != 3) {
      throw InputError("qcache section: malformed entry");
    }
    Entry e;
    e.done = true;
    if (result->str == "sat") {
      e.result = CheckResult::Sat;
    } else if (result->str == "unsat") {
      e.result = CheckResult::Unsat;
    } else {
      throw InputError("qcache section: bad result '" + result->str + "'");
    }
    e.slotValues.reserve(model->array.size());
    for (const json::Value& m : model->array) e.slotValues.push_back(m.asU64());
    e.cost.terms = cost->array[0].asU64();
    e.cost.gates = cost->array[1].asU64();
    e.cost.conflicts = cost->array[2].asU64();
    const json::Value* hm = ev.find("hm");
    const json::Value* p = ev.find("p");
    e.hasModel = hm == nullptr || hm->boolean;
    e.preTag = p == nullptr ? 0 : static_cast<uint8_t>(p->asU64());
    auto [it, inserted] = map_.emplace(key->str, std::move(e));
    if (inserted) fifo_.push_back(key->str);
  }
  cv_.notify_all();
}

QueryCache::Stats QueryCache::stats() const {
  std::lock_guard<std::mutex> lk(mu_);
  Stats s = stats_;
  s.entries = fifo_.size();
  s.capacity = capacity_;
  return s;
}

void QueryCache::Stats::writeJson(json::Writer& w) const {
  w.beginObject();
  w.kv("enabled", true);
  w.kv("capacity", static_cast<uint64_t>(capacity));
  w.kv("entries", static_cast<uint64_t>(entries));
  w.kv("hits", hits);
  w.kv("misses", misses);
  w.kv("evictions", evictions);
  w.kv("hit_rate", hitRate());
  w.endObject();
}

}  // namespace adlsym::smt
