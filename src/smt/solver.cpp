#include "smt/solver.h"

#include <algorithm>
#include <cstring>

#include "smt/printer.h"

namespace adlsym::smt {

void SmtSolver::assertAlways(TermRef t) {
  adlsym::check(t.width() == 1, "assertAlways requires a width-1 term");
  if (t.isTrue()) return;
  permanentAsserts_.push_back(t);
  // Cached verdicts were computed without this assertion.
  queryCache_.clear();
  if (t.isFalse()) {
    permanentlyUnsat_ = true;
    return;
  }
  if (!sat_.addUnit(bb_.litFor(t))) permanentlyUnsat_ = true;
}

CheckResult SmtSolver::checkFresh(const std::vector<TermRef>& assumptions) {
  SatSolver freshSat;
  BitBlaster freshBb(tm_, freshSat);
  bool bad = false;
  for (const TermRef t : permanentAsserts_) {
    if (t.isFalse() || !freshSat.addUnit(freshBb.litFor(t))) bad = true;
  }
  std::vector<Lit> lits;
  for (const TermRef t : assumptions) {
    if (t.isTrue()) continue;
    if (t.isFalse()) return CheckResult::Unsat;
    lits.push_back(freshBb.litFor(t));
  }
  if (bad) return CheckResult::Unsat;
  switch (freshSat.solve(lits)) {
    case SatResult::Sat: return CheckResult::Sat;
    case SatResult::Unsat: return CheckResult::Unsat;
    case SatResult::Unknown: return CheckResult::Unknown;
  }
  return CheckResult::Unknown;
}

CheckResult SmtSolver::check(const std::vector<TermRef>& assumptions) {
  ++stats_.queries;
  const auto start = std::chrono::steady_clock::now();
  auto finish = [&](CheckResult r) {
    const auto us = std::chrono::duration_cast<std::chrono::microseconds>(
                        std::chrono::steady_clock::now() - start)
                        .count();
    stats_.totalMicros += static_cast<uint64_t>(us);
    stats_.maxMicros = std::max<uint64_t>(stats_.maxMicros, static_cast<uint64_t>(us));
    switch (r) {
      case CheckResult::Sat: ++stats_.sat; break;
      case CheckResult::Unsat: ++stats_.unsat; break;
      case CheckResult::Unknown: ++stats_.unknown; break;
    }
    return r;
  };

  if (permanentlyUnsat_) return finish(CheckResult::Unsat);

  // Cache lookup. The key is the *sorted set* of assumption term ids:
  // hash-consing makes structurally equal assumptions share ids, and
  // order/duplicates don't affect satisfiability.
  std::string cacheKey;
  if (cacheEnabled_) {
    std::vector<TermId> ids;
    ids.reserve(assumptions.size());
    for (const TermRef t : assumptions) ids.push_back(t.id());
    std::sort(ids.begin(), ids.end());
    ids.erase(std::unique(ids.begin(), ids.end()), ids.end());
    cacheKey.resize(ids.size() * sizeof(TermId));
    std::memcpy(cacheKey.data(), ids.data(), cacheKey.size());
    if (auto it = queryCache_.find(cacheKey); it != queryCache_.end()) {
      ++cacheHits_;
      if (it->second.result == CheckResult::Sat) model_ = it->second.model;
      return finish(it->second.result);
    }
  }
  auto remember = [&](CheckResult r) {
    if (cacheEnabled_ && r != CheckResult::Unknown) {
      CacheEntry entry;
      entry.result = r;
      if (r == CheckResult::Sat) entry.model = model_;
      queryCache_.emplace(std::move(cacheKey), std::move(entry));
    }
    return finish(r);
  };

  std::vector<Lit> lits;
  lits.reserve(assumptions.size());
  for (const TermRef t : assumptions) {
    adlsym::check(t.width() == 1, "assumption must be width 1");
    if (t.isTrue()) continue;
    if (t.isFalse()) return remember(CheckResult::Unsat);
    lits.push_back(bb_.litFor(t));
  }
  const SatResult raw = sat_.solve(lits);
  if (paranoid_ && raw != SatResult::Unknown) {
    const CheckResult fresh = checkFresh(assumptions);
    const CheckResult incr =
        raw == SatResult::Sat ? CheckResult::Sat : CheckResult::Unsat;
    if (fresh != CheckResult::Unknown && fresh != incr) {
      std::vector<TermRef> all = permanentAsserts_;
      all.insert(all.end(), assumptions.begin(), assumptions.end());
      throw Error(std::string("paranoid check: incremental=") +
                  (incr == CheckResult::Sat ? "sat" : "unsat") +
                  " fresh=" + (fresh == CheckResult::Sat ? "sat" : "unsat") +
                  "\n" + toSmtLib(all));
    }
  }
  switch (raw) {
    case SatResult::Sat: {
      // Snapshot variable values immediately: any later incremental blast
      // (even for model reads) unwinds the assignment trail.
      model_.clear();
      for (const auto& [termId, bits] : bb_.varTerms()) {
        uint64_t v = 0;
        for (size_t i = 0; i < bits.size(); ++i) {
          if (sat_.modelValue(bits[i])) v |= uint64_t{1} << i;
        }
        model_[tm_.varIndex(termId)] = v;
      }
      return remember(CheckResult::Sat);
    }
    case SatResult::Unsat: return remember(CheckResult::Unsat);
    case SatResult::Unknown: return finish(CheckResult::Unknown);
  }
  return finish(CheckResult::Unknown);
}

uint64_t SmtSolver::modelValue(TermRef t) {
  return tm_.evalWith(t, [this](uint32_t idx) {
    auto it = model_.find(idx);
    return it == model_.end() ? uint64_t{0} : it->second;
  });
}

}  // namespace adlsym::smt
