#include "smt/solver.h"

#include <algorithm>
#include <bit>
#include <cstring>
#include <sstream>

#include "smt/presolver.h"
#include "smt/printer.h"
#include "smt/qcache.h"
#include "support/fault.h"
#include "support/json.h"
#include "support/strings.h"

namespace adlsym::smt {

const char* checkResultName(CheckResult r) {
  switch (r) {
    case CheckResult::Sat: return "sat";
    case CheckResult::Unsat: return "unsat";
    case CheckResult::Unknown: return "unknown";
  }
  return "?";
}

void SolverTelemetry::writeJson(json::Writer& w) const {
  w.beginObject();
  w.kv("queries", queries);
  w.kv("sat", sat);
  w.kv("unsat", unsat);
  w.kv("unknown", unknown);
  w.kv("total_micros", totalMicros);
  w.kv("max_micros", maxMicros);
  w.kv("cache_hits", cacheHits);
  w.kv("cache_hit_rate", cacheHitRate());
  w.key("sat_core").beginObject();
  w.kv("conflicts", satCore.conflicts);
  w.kv("decisions", satCore.decisions);
  w.kv("propagations", satCore.propagations);
  w.kv("restarts", satCore.restarts);
  w.kv("learned", satCore.learned);
  w.kv("deleted_clauses", satCore.deletedClauses);
  w.kv("deadline_aborts", satCore.deadlineAborts);
  w.kv("vars", satVars);
  w.kv("clauses", satClauses);
  w.endObject();
  w.key("bitblast").beginObject();
  w.kv("gates", blast.gates);
  w.kv("gate_cache_hits", blast.cacheHits);
  w.kv("terms_blasted", blast.termsBlasted);
  w.endObject();
  // Canonical (cache-replayed) cost totals — schedule-independent, unlike
  // sat_core/bitblast which only count work actually performed. v5.
  w.key("canon").beginObject();
  w.kv("terms", canon.terms);
  w.kv("gates", canon.gates);
  w.kv("conflicts", canon.conflicts);
  w.endObject();
  w.endObject();
}

void SolverTelemetry::writePrefilterJson(json::Writer& w) const {
  w.beginObject();
  w.kv("enabled", preEnabled);
  w.kv("consulted", preConsulted);
  w.kv("sat", preSat);
  w.kv("unsat", preUnsat);
  w.kv("hits", preSat + preUnsat);
  w.kv("fallbacks", preFallback);
  w.kv("shortcircuit", preShortcircuit);
  w.kv("direct", directSolves);
  w.kv("core_constraints", preCoreConstraints);
  w.kv("reconciled", prefilterReconciled());
  w.endObject();
}

std::string SolverTelemetry::toJson() const {
  std::ostringstream os;
  json::Writer w(os);
  writeJson(w);
  return os.str();
}

std::string SolverTelemetry::format() const {
  std::string out = formatStr(
      "solver: %llu queries (%llu sat, %llu unsat, %llu unknown), %.1f ms, "
      "%llu cache hits (%.0f%%)\n",
      static_cast<unsigned long long>(queries),
      static_cast<unsigned long long>(sat),
      static_cast<unsigned long long>(unsat),
      static_cast<unsigned long long>(unknown), totalMicros / 1e3,
      static_cast<unsigned long long>(cacheHits), 100.0 * cacheHitRate());
  out += formatStr(
      "sat: %llu conflicts, %llu decisions, %llu propagations | blast: "
      "%llu gates, %llu terms\n",
      static_cast<unsigned long long>(satCore.conflicts),
      static_cast<unsigned long long>(satCore.decisions),
      static_cast<unsigned long long>(satCore.propagations),
      static_cast<unsigned long long>(blast.gates),
      static_cast<unsigned long long>(blast.termsBlasted));
  return out;
}

SolverTelemetry SmtSolver::telemetrySnapshot() const {
  SolverTelemetry t;
  t.queries = stats_.queries;
  t.sat = stats_.sat;
  t.unsat = stats_.unsat;
  t.unknown = stats_.unknown;
  t.totalMicros = stats_.totalMicros;
  t.maxMicros = stats_.maxMicros;
  t.cacheHits = cacheHits_;
  t.canon = stats_.canon;
  t.preEnabled = pre_ != nullptr;
  t.preConsulted = stats_.preConsulted;
  t.preSat = stats_.preSat;
  t.preUnsat = stats_.preUnsat;
  t.preFallback = stats_.preFallback;
  t.preShortcircuit = stats_.preShortcircuit;
  t.directSolves = stats_.directSolves;
  t.preCoreConstraints = stats_.preCoreConstraints;
  if (freshMode_) {
    t.satCore = freshSat_;
    t.blast = freshBlast_;
    t.satVars = freshVars_;
    t.satClauses = freshClauses_;
  } else {
    t.satCore = sat_.stats();
    t.blast = bb_.stats();
    t.satVars = sat_.numVars();
    t.satClauses = sat_.numClauses();
  }
  return t;
}

void SmtSolver::setTelemetry(telemetry::Telemetry* t) {
  tel_ = t;
  queryHist_ = t ? &t->metrics().histogram("solver.query_us") : nullptr;
  queryCtr_ = t ? &t->metrics().counter("solver.queries") : nullptr;
  cacheHitCtr_ = t ? &t->metrics().counter("solver.cache_hits") : nullptr;
  cacheMissCtr_ = t ? &t->metrics().counter("solver.cache_misses") : nullptr;
  preHitCtr_ = t ? &t->metrics().counter("solver.prefilter_hits") : nullptr;
  preMissCtr_ =
      t ? &t->metrics().counter("solver.prefilter_misses") : nullptr;
  sat_.setTelemetry(t);
  bb_.setTelemetry(t);
}

void SmtSolver::assertAlways(TermRef t) {
  adlsym::check(t.width() == 1, "assertAlways requires a width-1 term");
  if (t.isTrue()) return;
  permanentAsserts_.push_back(t);
  // Cached verdicts were computed without this assertion.
  queryCache_.clear();
  if (t.isFalse()) {
    permanentlyUnsat_ = true;
    return;
  }
  if (!sat_.addUnit(bb_.litFor(t))) permanentlyUnsat_ = true;
}

CheckResult SmtSolver::checkFresh(const std::vector<TermRef>& assumptions) {
  SatSolver freshSat;
  BitBlaster freshBb(tm_, freshSat);
  bool bad = false;
  for (const TermRef t : permanentAsserts_) {
    if (t.isFalse() || !freshSat.addUnit(freshBb.litFor(t))) bad = true;
  }
  std::vector<Lit> lits;
  for (const TermRef t : assumptions) {
    if (t.isTrue()) continue;
    if (t.isFalse()) return CheckResult::Unsat;
    lits.push_back(freshBb.litFor(t));
  }
  if (bad) return CheckResult::Unsat;
  switch (freshSat.solve(lits)) {
    case SatResult::Sat: return CheckResult::Sat;
    case SatResult::Unsat: return CheckResult::Unsat;
    case SatResult::Unknown: return CheckResult::Unknown;
  }
  return CheckResult::Unknown;
}

CheckResult SmtSolver::solveFreshWithModel(
    const std::vector<TermRef>& assumptions, telemetry::Clock* clk,
    uint64_t deadlineUs) {
  SatSolver fs;
  BitBlaster fb(tm_, fs);
  fs.setTelemetry(tel_);
  fb.setTelemetry(tel_);
  fs.setConflictBudget(conflictBudget_);
  if (deadlineUs != 0) fs.setDeadline(clk, deadlineUs);
  bool bad = false;
  for (const TermRef t : permanentAsserts_) {
    if (t.isFalse() || !fs.addUnit(fb.litFor(t))) bad = true;
  }
  std::vector<Lit> lits;
  lits.reserve(assumptions.size());
  for (const TermRef t : assumptions) {
    if (t.isTrue()) continue;
    if (t.isFalse()) {
      bad = true;
      break;
    }
    lits.push_back(fb.litFor(t));
  }
  CheckResult r = CheckResult::Unknown;
  if (bad) {
    r = CheckResult::Unsat;
  } else {
    switch (fs.solve(lits)) {
      case SatResult::Sat: r = CheckResult::Sat; break;
      case SatResult::Unsat: r = CheckResult::Unsat; break;
      case SatResult::Unknown: r = CheckResult::Unknown; break;
    }
  }
  if (r == CheckResult::Sat) {
    model_.clear();
    for (const auto& [termId, bits] : fb.varTerms()) {
      uint64_t v = 0;
      for (size_t i = 0; i < bits.size(); ++i) {
        if (fs.modelValue(bits[i])) v |= uint64_t{1} << i;
      }
      model_[tm_.varIndex(termId)] = v;
    }
  }
  freshSat_ += fs.stats();
  freshBlast_ += fb.stats();
  freshVars_ += fs.numVars();
  freshClauses_ += fs.numClauses();
  return r;
}

void SmtSolver::restoreModelFresh(const std::vector<TermRef>& assumptions) {
  // No telemetry, no budget, no deadline, no stats aggregation: see the
  // header comment. The throwaway core sees the same canonical CNF as
  // solveFreshWithModel would, so the model it finds is the model the
  // single-flight miss solve would have published.
  SatSolver fs;
  BitBlaster fb(tm_, fs);
  bool bad = false;
  for (const TermRef t : permanentAsserts_) {
    if (t.isFalse() || !fs.addUnit(fb.litFor(t))) bad = true;
  }
  std::vector<Lit> lits;
  lits.reserve(assumptions.size());
  for (const TermRef t : assumptions) {
    if (t.isTrue()) continue;
    if (t.isFalse()) {
      bad = true;
      break;
    }
    lits.push_back(fb.litFor(t));
  }
  adlsym::check(!bad && fs.solve(lits) == SatResult::Sat,
                "prefilter sat certificate failed model restoration "
                "(abstract-domain soundness bug)");
  model_.clear();
  for (const auto& [termId, bits] : fb.varTerms()) {
    uint64_t v = 0;
    for (size_t i = 0; i < bits.size(); ++i) {
      if (fs.modelValue(bits[i])) v |= uint64_t{1} << i;
    }
    model_[tm_.varIndex(termId)] = v;
  }
}

CheckResult SmtSolver::checkImpl(const std::vector<TermRef>& assumptions,
                                 bool needModel) {
  fault::hit("solver.check");
  ++stats_.queries;
  if (queryCtr_) queryCtr_->add();
  // One clock for both the legacy Stats and the telemetry histogram: the
  // injected clock when telemetry is attached (deterministic tests), the
  // system clock otherwise.
  telemetry::Clock& clk =
      tel_ ? tel_->clock() : telemetry::Clock::system();
  auto now = [&] { return clk.nowMicros(); };
  const uint64_t startUs = now();
  bool cached = false;
  // Canonical cost of this query (QueryCost): measured on a miss, replayed
  // from the cache on a hit, zero on short-circuited checks.
  QueryCost cost;
  auto finish = [&](CheckResult r) {
    const uint64_t us = now() - startUs;
    stats_.totalMicros += us;
    stats_.maxMicros = std::max(stats_.maxMicros, us);
    switch (r) {
      case CheckResult::Sat: ++stats_.sat; break;
      case CheckResult::Unsat: ++stats_.unsat; break;
      case CheckResult::Unknown: ++stats_.unknown; break;
    }
    stats_.canon += cost;
    if (shapeProfiling_) {
      const auto bucket = static_cast<unsigned>(std::bit_width(cost.terms));
      ShapeRow& row = shapes_[bucket];
      ++row.queries;
      if (cached) ++row.hits;
      switch (r) {
        case CheckResult::Sat: ++row.sat; break;
        case CheckResult::Unsat: ++row.unsat; break;
        case CheckResult::Unknown: ++row.unknown; break;
      }
      row.cost += cost;
    }
    if (queryHist_) queryHist_->record(us);
    if (listener_) listener_->onCheck(permanentAsserts_, assumptions, r, us, cached);
    for (QueryListener* l : extraListeners_) {
      l->onCheck(permanentAsserts_, assumptions, r, us, cached);
    }
    if (tel_ && tel_->tracing()) {
      tel_->emit(telemetry::EventKind::SolverQuery,
                 {{"result", checkResultName(r)},
                  {"us", us},
                  {"cached", cached ? 1 : 0},
                  {"assumptions", static_cast<uint64_t>(assumptions.size())}});
    }
    return r;
  };

  // Prefilter accounting (docs/absdomain.md): consult() judges a cache
  // miss abstractly and files it in its verdict bucket; replayTag()
  // re-plays a cached key's provenance so per-issuance hit/miss tallies
  // are independent of which caller took the miss. Conclusive verdicts
  // are counted once per judged key, exactly like qcache misses.
  auto consult = [&]() {
    const PreVerdict pv = pre_->judge(permanentAsserts_, assumptions);
    ++stats_.preConsulted;
    switch (pv.result) {
      case CheckResult::Sat:
        ++stats_.preSat;
        ++stats_.preHitSeen;
        if (preHitCtr_) preHitCtr_->add();
        break;
      case CheckResult::Unsat:
        ++stats_.preUnsat;
        ++stats_.preHitSeen;
        stats_.preCoreConstraints += pv.coreConstraints;
        if (preHitCtr_) preHitCtr_->add();
        break;
      case CheckResult::Unknown:
        ++stats_.preFallback;
        ++stats_.preMissSeen;
        if (preMissCtr_) preMissCtr_->add();
        break;
    }
    return pv.result;
  };
  auto replayTag = [&](uint8_t tag) {
    if (tag == 1 || tag == 2) {
      ++stats_.preHitSeen;
      if (preHitCtr_) preHitCtr_->add();
    } else if (tag == 3) {
      ++stats_.preMissSeen;
      if (preMissCtr_) preMissCtr_->add();
    }
  };

  if (permanentlyUnsat_) {
    ++stats_.preShortcircuit;
    return finish(CheckResult::Unsat);
  }

  if (freshMode_) {
    for (const TermRef t : assumptions) {
      adlsym::check(t.width() == 1, "assumption must be width 1");
      if (t.isFalse()) {
        ++stats_.preShortcircuit;
        return finish(CheckResult::Unsat);
      }
    }
    uint64_t deadlineUs = 0;
    if (queryTimeoutMicros_ != 0) deadlineUs = startUs + queryTimeoutMicros_;
    if (wallDeadlineMicros_ != 0) {
      deadlineUs = deadlineUs == 0 ? wallDeadlineMicros_
                                   : std::min(deadlineUs, wallDeadlineMicros_);
    }
    if (deadlineUs != 0 && startUs >= deadlineUs) {
      ++stats_.preShortcircuit;
      return finish(CheckResult::Unknown);
    }
    // Fresh-solve cost is the delta of the fresh aggregates around the
    // throwaway-core solve; on a cache hit the stored cost is replayed.
    auto freshCostDelta = [&](auto solve) {
      const uint64_t terms0 = freshBlast_.termsBlasted;
      const uint64_t gates0 = freshBlast_.gates;
      const uint64_t conf0 = freshSat_.conflicts;
      const CheckResult r = solve();
      cost.terms = freshBlast_.termsBlasted - terms0;
      cost.gates = freshBlast_.gates - gates0;
      cost.conflicts = freshSat_.conflicts - conf0;
      return r;
    };
    if (sharedCache_ == nullptr) {
      if (pre_ != nullptr) {
        const CheckResult pv = consult();
        if (pv == CheckResult::Unsat) return finish(pv);
        if (pv == CheckResult::Sat) {
          if (needModel) {
            restoreModelFresh(assumptions);
            ++stats_.preModelRestores;
          }
          return finish(pv);
        }
      } else {
        ++stats_.directSolves;
      }
      return finish(freshCostDelta(
          [&] { return solveFreshWithModel(assumptions, &clk, deadlineUs); }));
    }
    // Shared-cache path: canonical key, single-flight solve-or-wait.
    std::vector<TermRef> slotVars;
    const std::string key =
        QueryCache::canonicalKey(permanentAsserts_, assumptions, &slotVars);
    // Slot-indexed rendering of model_, the publish/backfill format.
    auto slotModel = [&] {
      std::vector<uint64_t> slotValues;
      slotValues.reserve(slotVars.size());
      for (const TermRef v : slotVars) {
        auto it = model_.find(tm_.varIndex(v.id()));
        slotValues.push_back(it == model_.end() ? 0 : it->second);
      }
      return slotValues;
    };
    QueryCache::Outcome o = sharedCache_->acquire(key);
    if (o.hit) {
      ++cacheHits_;
      cached = true;
      cost = o.cost;
      if (cacheHitCtr_) cacheHitCtr_->add();
      replayTag(o.preTag);
      if (o.result == CheckResult::Sat) {
        if (o.hasModel) {
          // Translate the slot-indexed canonical model back to this pool's
          // variables (slotVars[i] is the Var term behind α-slot i).
          model_.clear();
          const size_t n = std::min(slotVars.size(), o.slotValues.size());
          for (size_t i = 0; i < n; ++i) {
            model_[tm_.varIndex(slotVars[i].id())] = o.slotValues[i];
          }
        } else if (needModel) {
          // Prefiltered Sat entry, first model-needing reader: restore
          // the canonical model off the books and backfill the entry so
          // later readers replay it like any solved entry.
          restoreModelFresh(assumptions);
          ++stats_.preModelRestores;
          sharedCache_->backfillModel(key, slotModel());
        }
      }
      return finish(o.result);
    }
    if (cacheMissCtr_) cacheMissCtr_->add();
    uint8_t preTag = 0;
    if (pre_ != nullptr) {
      CheckResult pv;
      try {
        pv = consult();
        if (pv == CheckResult::Sat && needModel) {
          restoreModelFresh(assumptions);
          ++stats_.preModelRestores;
        }
      } catch (...) {
        sharedCache_->abandon(key);
        throw;
      }
      if (pv == CheckResult::Unsat) {
        sharedCache_->publish(key, pv, {}, QueryCost{}, /*preTag=*/2,
                              /*hasModel=*/true);
        return finish(pv);
      }
      if (pv == CheckResult::Sat) {
        // Canonical cost stays zero whether or not a restoration solve
        // ran: the key is prefilter-decided, and its replayed cost must
        // not depend on whether the miss-taker needed a model.
        sharedCache_->publish(key, pv,
                              needModel ? slotModel() : std::vector<uint64_t>{},
                              QueryCost{}, /*preTag=*/1,
                              /*hasModel=*/needModel);
        return finish(pv);
      }
      preTag = 3;
    } else {
      ++stats_.directSolves;
    }
    CheckResult r;
    try {
      r = freshCostDelta(
          [&] { return solveFreshWithModel(assumptions, &clk, deadlineUs); });
    } catch (...) {
      sharedCache_->abandon(key);
      throw;
    }
    if (r == CheckResult::Unknown) {
      // Never cache Unknown: a waiter (or a later caller) retries with its
      // own budget, exactly as -j1 would.
      sharedCache_->abandon(key);
    } else {
      std::vector<uint64_t> slotValues;
      if (r == CheckResult::Sat) slotValues = slotModel();
      sharedCache_->publish(key, r, std::move(slotValues), cost, preTag);
    }
    return finish(r);
  }

  // Cache lookup. The key is the *sorted set* of assumption term ids:
  // hash-consing makes structurally equal assumptions share ids, and
  // order/duplicates don't affect satisfiability.
  std::string cacheKey;
  if (cacheEnabled_) {
    std::vector<TermId> ids;
    ids.reserve(assumptions.size());
    for (const TermRef t : assumptions) ids.push_back(t.id());
    std::sort(ids.begin(), ids.end());
    ids.erase(std::unique(ids.begin(), ids.end()), ids.end());
    cacheKey.resize(ids.size() * sizeof(TermId));
    if (!ids.empty()) {
      std::memcpy(cacheKey.data(), ids.data(), cacheKey.size());
    }
    if (auto it = queryCache_.find(cacheKey); it != queryCache_.end()) {
      ++cacheHits_;
      cached = true;
      cost = it->second.cost;
      if (cacheHitCtr_) cacheHitCtr_->add();
      replayTag(it->second.preTag);
      if (it->second.result == CheckResult::Sat) {
        if (it->second.hasModel) {
          model_ = it->second.model;
        } else if (needModel) {
          // Prefiltered Sat entry without a model: restore one off the
          // books and backfill the entry for later readers.
          restoreModelFresh(assumptions);
          ++stats_.preModelRestores;
          it->second.model = model_;
          it->second.hasModel = true;
        }
      }
      return finish(it->second.result);
    }
    if (cacheMissCtr_) cacheMissCtr_->add();
  }
  // Incremental-solve cost: delta of the member core/blaster stats from
  // just before the assumption literals are blasted (snapshots assigned
  // below, once the deadline pre-check has passed).
  uint64_t termsBefore = 0, gatesBefore = 0, conflictsBefore = 0;
  uint8_t preTag = 0;
  auto snapCost = [&] {
    cost.terms = bb_.stats().termsBlasted - termsBefore;
    cost.gates = bb_.stats().gates - gatesBefore;
    cost.conflicts = sat_.stats().conflicts - conflictsBefore;
  };
  auto remember = [&](CheckResult r) {
    snapCost();
    if (cacheEnabled_ && r != CheckResult::Unknown) {
      CacheEntry entry;
      entry.result = r;
      if (r == CheckResult::Sat) entry.model = model_;
      entry.cost = cost;
      entry.preTag = preTag;
      queryCache_.emplace(std::move(cacheKey), std::move(entry));
    }
    return finish(r);
  };

  // Resolve this query's wall deadline: the per-query timeout (relative
  // to query start) and the run-wide deadline (absolute, set by the
  // explorer from its remaining maxWallSeconds), whichever is sooner.
  uint64_t deadlineUs = 0;
  if (queryTimeoutMicros_ != 0) deadlineUs = startUs + queryTimeoutMicros_;
  if (wallDeadlineMicros_ != 0) {
    deadlineUs = deadlineUs == 0 ? wallDeadlineMicros_
                                 : std::min(deadlineUs, wallDeadlineMicros_);
  }
  if (deadlineUs != 0 && startUs >= deadlineUs) {
    // The budget is already spent; don't even bit-blast.
    ++stats_.preShortcircuit;
    return finish(CheckResult::Unknown);
  }
  // Prefilter consult, after every short-circuit off-mode would also
  // take (so verdicts are identical with the prefilter on or off) and
  // before any bit-blasting. Conclusive verdicts are cached with a zero
  // canonical cost and skip the SAT core entirely; the incremental core
  // never sees their literals.
  if (pre_ != nullptr) {
    const CheckResult pv = consult();
    if (pv == CheckResult::Unsat) {
      if (cacheEnabled_) {
        CacheEntry entry;
        entry.result = pv;
        entry.preTag = 2;
        queryCache_.emplace(std::move(cacheKey), std::move(entry));
      }
      return finish(pv);
    }
    if (pv == CheckResult::Sat) {
      if (needModel) {
        restoreModelFresh(assumptions);
        ++stats_.preModelRestores;
      }
      if (cacheEnabled_) {
        CacheEntry entry;
        entry.result = pv;
        entry.preTag = 1;
        entry.hasModel = needModel;
        if (needModel) entry.model = model_;
        queryCache_.emplace(std::move(cacheKey), std::move(entry));
      }
      return finish(pv);
    }
    preTag = 3;
  } else {
    ++stats_.directSolves;
  }
  sat_.setDeadline(deadlineUs != 0 ? &clk : nullptr, deadlineUs);
  termsBefore = bb_.stats().termsBlasted;
  gatesBefore = bb_.stats().gates;
  conflictsBefore = sat_.stats().conflicts;

  std::vector<Lit> lits;
  lits.reserve(assumptions.size());
  for (const TermRef t : assumptions) {
    adlsym::check(t.width() == 1, "assumption must be width 1");
    if (t.isTrue()) continue;
    if (t.isFalse()) return remember(CheckResult::Unsat);
    lits.push_back(bb_.litFor(t));
  }
  const SatResult raw = sat_.solve(lits);
  if (paranoid_ && raw != SatResult::Unknown) {
    const CheckResult fresh = checkFresh(assumptions);
    const CheckResult incr =
        raw == SatResult::Sat ? CheckResult::Sat : CheckResult::Unsat;
    if (fresh != CheckResult::Unknown && fresh != incr) {
      std::vector<TermRef> all = permanentAsserts_;
      all.insert(all.end(), assumptions.begin(), assumptions.end());
      throw Error(std::string("paranoid check: incremental=") +
                  (incr == CheckResult::Sat ? "sat" : "unsat") +
                  " fresh=" + (fresh == CheckResult::Sat ? "sat" : "unsat") +
                  "\n" + toSmtLib(all));
    }
  }
  switch (raw) {
    case SatResult::Sat: {
      // Snapshot variable values immediately: any later incremental blast
      // (even for model reads) unwinds the assignment trail.
      model_.clear();
      for (const auto& [termId, bits] : bb_.varTerms()) {
        uint64_t v = 0;
        for (size_t i = 0; i < bits.size(); ++i) {
          if (sat_.modelValue(bits[i])) v |= uint64_t{1} << i;
        }
        model_[tm_.varIndex(termId)] = v;
      }
      return remember(CheckResult::Sat);
    }
    case SatResult::Unsat: return remember(CheckResult::Unsat);
    case SatResult::Unknown:
      snapCost();
      return finish(CheckResult::Unknown);
  }
  snapCost();
  return finish(CheckResult::Unknown);
}

uint64_t SmtSolver::modelValue(TermRef t) {
  return tm_.evalWith(t, [this](uint32_t idx) {
    auto it = model_.find(idx);
    return it == model_.end() ? uint64_t{0} : it->second;
  });
}

}  // namespace adlsym::smt
