#include "smt/presolver.h"

#include <algorithm>

#include "smt/solver.h"

namespace adlsym::smt {

using analysis::AbsValue;
using analysis::TermAbsEvaluator;
using analysis::VarRefinement;

PreVerdict PreSolver::judge(const std::vector<TermRef>& permanent,
                            const std::vector<TermRef>& assumptions) {
  // Gather the non-trivial constraints.
  std::vector<TermRef> cs;
  cs.reserve(permanent.size() + assumptions.size());
  bool anyFalse = false;
  for (const std::vector<TermRef>* list : {&permanent, &assumptions}) {
    for (const TermRef t : *list) {
      if (!t.valid() || t.isTrue()) continue;
      if (t.isFalse()) {
        anyFalse = true;
        continue;
      }
      cs.push_back(t);
    }
  }
  if (anyFalse) return {CheckResult::Unsat, 1};
  if (cs.empty()) return {CheckResult::Sat, 0};

  // Phase 1: meet every constraint's variable refinements into one
  // environment. Full pass — no early exit — so the refined values and
  // the contributor sets depend only on the constraint *set*.
  struct VarState {
    AbsValue v;
    std::vector<uint32_t> contributors;  // constraint ordinals, may repeat
  };
  std::unordered_map<TermId, VarState> env;
  std::vector<uint32_t> refiners;  // ordinals that refined some variable
  for (uint32_t i = 0; i < cs.size(); ++i) {
    auto cacheIt = refineCache_.find(cs[i].id());
    if (cacheIt == refineCache_.end()) {
      std::vector<VarRefinement> refs;
      analysis::appendRefinements(cs[i], refs);
      cacheIt = refineCache_.emplace(cs[i].id(), std::move(refs)).first;
    }
    bool contributed = false;
    for (const auto& [var, val] : cacheIt->second) {
      contributed = true;
      const auto [slot, fresh] = env.try_emplace(var, VarState{val, {i}});
      if (!fresh) {
        slot->second.v = analysis::absMeet(slot->second.v, val);
        slot->second.contributors.push_back(i);
      }
    }
    if (contributed) refiners.push_back(i);
  }
  const auto distinctContributors = [](const VarState& st) {
    std::vector<uint32_t> c = st.contributors;
    std::sort(c.begin(), c.end());
    c.erase(std::unique(c.begin(), c.end()), c.end());
    return c;
  };
  // A variable met to bottom: its constraints exclude every value.
  {
    std::vector<uint32_t> blamed;
    for (const auto& [var, st] : env) {
      if (!st.v.bot) continue;
      const auto c = distinctContributors(st);
      blamed.insert(blamed.end(), c.begin(), c.end());
    }
    if (!blamed.empty()) {
      std::sort(blamed.begin(), blamed.end());
      blamed.erase(std::unique(blamed.begin(), blamed.end()), blamed.end());
      return {CheckResult::Unsat, static_cast<unsigned>(blamed.size())};
    }
  }

  // Phase 2: evaluate every constraint under the refined environment.
  TermAbsEvaluator ev(tm_);
  ev.setNodeBudget(nodeBudget_);
  for (const auto& [var, st] : env) ev.bind(var, st.v);
  bool budgetHit = false;
  bool allTrue = true;
  std::vector<uint32_t> falsified;
  for (uint32_t i = 0; i < cs.size(); ++i) {
    const auto av = ev.eval(cs[i]);
    if (!av.has_value()) {
      budgetHit = true;
      break;  // every later eval would return nullopt too
    }
    uint64_t v = 0;
    if (av->bot) {
      allTrue = false;  // vacuous abstraction; not conclusive on its own
    } else if (av->isConst(&v)) {
      if (v == 0) falsified.push_back(i);
    } else {
      allTrue = false;
    }
  }
  // Whether the budget binds depends only on the query's distinct node
  // count (evaluation is memoized), so this check is order-independent —
  // and it must come before any verdict to stay that way.
  if (budgetHit) return {CheckResult::Unknown, 0};
  if (!falsified.empty()) {
    // The abstract core: the falsified constraints plus every constraint
    // whose refinements shaped the environment they were falsified under
    // — as a distinct union, since one constraint can play both roles.
    std::vector<uint32_t> blamed = falsified;
    blamed.insert(blamed.end(), refiners.begin(), refiners.end());
    std::sort(blamed.begin(), blamed.end());
    blamed.erase(std::unique(blamed.begin(), blamed.end()), blamed.end());
    return {CheckResult::Unsat, static_cast<unsigned>(blamed.size())};
  }
  if (!allTrue) return {CheckResult::Unknown, 0};

  // Phase 3: Sat gate. Abstract truth of every constraint quantifies
  // over the refined environment; that set must be inhabited for a
  // witness to exist. An uninhabited refinement is itself a sound Unsat
  // (the refinements over-approximate each constraint's projection).
  {
    std::vector<uint32_t> blamed;
    for (const auto& [var, st] : env) {
      if (analysis::absPickConcrete(st.v).has_value()) continue;
      const auto c = distinctContributors(st);
      blamed.insert(blamed.end(), c.begin(), c.end());
    }
    if (!blamed.empty()) {
      std::sort(blamed.begin(), blamed.end());
      blamed.erase(std::unique(blamed.begin(), blamed.end()), blamed.end());
      return {CheckResult::Unsat, static_cast<unsigned>(blamed.size())};
    }
  }
  return {CheckResult::Sat, 0};
}

}  // namespace adlsym::smt
