// Incremental SMT(QF_BV) facade: simplify (at build time) -> bit-blast ->
// CDCL. One SmtSolver instance serves every path-feasibility query of an
// exploration run; path conditions are passed as assumptions so learned
// clauses are shared across paths. This is the repo's Z3 substitute
// (DESIGN.md, substitutions).
#pragma once

#include <chrono>
#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "smt/bitblast.h"
#include "smt/qcache.h"
#include "smt/sat.h"
#include "smt/term.h"
#include "support/telemetry.h"

namespace adlsym::smt {

enum class CheckResult { Sat, Unsat, Unknown };

const char* checkResultName(CheckResult r);

class PreSolver;  // smt/presolver.h

/// One snapshot of the whole SMT stack's statistics: query-level stats,
/// the SAT core, the bit-blaster and the query cache, aggregated so
/// consumers read a single object instead of stitching stats()/satStats()/
/// blastStats() together (the CLI stats printout and the JSON stats
/// document are both rendered from this).
struct SolverTelemetry {
  uint64_t queries = 0;
  uint64_t sat = 0;
  uint64_t unsat = 0;
  uint64_t unknown = 0;
  uint64_t totalMicros = 0;
  uint64_t maxMicros = 0;
  uint64_t cacheHits = 0;
  SatSolver::Stats satCore;
  BitBlaster::Stats blast;
  uint64_t satVars = 0;
  uint64_t satClauses = 0;
  /// Canonical (cache-replayed, schedule-independent) query cost totals;
  /// the profiler's reconciliation targets (docs/observability.md).
  QueryCost canon;

  /// Abstract prefilter accounting (docs/absdomain.md). Every query lands
  /// in exactly one of four disjoint buckets: cacheHits, preShortcircuit
  /// (resolved before cache or prefilter — permanently-unsat, constant-
  /// false assumption, expired deadline), preConsulted (prefilter judged
  /// it at a cache miss) and directSolves (missed with the prefilter
  /// disabled). preSat/preUnsat/preFallback partition preConsulted.
  bool preEnabled = false;
  uint64_t preConsulted = 0;
  uint64_t preSat = 0;
  uint64_t preUnsat = 0;
  uint64_t preFallback = 0;
  uint64_t preShortcircuit = 0;
  uint64_t directSolves = 0;
  /// Summed abstract-core sizes over conclusive-unsat verdicts: how many
  /// constraints the abstract explanation blamed, totalled per judged key.
  uint64_t preCoreConstraints = 0;

  /// Hit rate over all queries (cached and solved), in [0,1].
  double cacheHitRate() const {
    return queries ? double(cacheHits) / double(queries) : 0.0;
  }

  /// Both prefilter accounting identities hold: the verdict kinds
  /// partition the consultations, and the four buckets partition the
  /// queries.
  bool prefilterReconciled() const {
    return preSat + preUnsat + preFallback == preConsulted &&
           cacheHits + preShortcircuit + preConsulted + directSolves ==
               queries;
  }

  /// The "solver" object of the stats schema (docs/observability.md).
  void writeJson(json::Writer& w) const;
  /// The top-level "prefilter" object of the stats schema (v6).
  void writePrefilterJson(json::Writer& w) const;
  std::string toJson() const;
  /// Human-readable two-line form used by `adlsym explore`.
  std::string format() const;
};

/// Capture hook for every SmtSolver::check: receives the full query (the
/// permanent assertions plus this check's assumptions), the verdict and
/// the measured latency. obs::QueryLogger implements this to dump a
/// replayable SMT-LIB corpus (docs/observability.md).
class QueryListener {
 public:
  virtual ~QueryListener() = default;
  virtual void onCheck(const std::vector<TermRef>& permanent,
                       const std::vector<TermRef>& assumptions,
                       CheckResult result, uint64_t micros, bool cached) = 0;
};

class SmtSolver {
 public:
  explicit SmtSolver(TermManager& tm) : tm_(tm), bb_(tm, sat_) {}

  TermManager& termManager() { return tm_; }

  /// Permanently assert a width-1 term (conjoined with every later check).
  void assertAlways(TermRef t);

  /// Check satisfiability of the permanent assertions plus the given
  /// width-1 assumption terms.
  CheckResult check(const std::vector<TermRef>& assumptions) {
    return checkImpl(assumptions, /*needModel=*/true);
  }

  /// Like check(), but the caller promises not to read the model after a
  /// Sat verdict (lastModel()/modelValue() are unspecified). This is what
  /// lets the abstract prefilter short-circuit Sat verdicts: a conclusive
  /// abstract Sat carries no model, so model-needing callers still solve.
  CheckResult checkNoModel(const std::vector<TermRef>& assumptions) {
    return checkImpl(assumptions, /*needModel=*/false);
  }

  /// Model value of a term after a Sat result. The model is snapshotted at
  /// Sat time, so this works for any term (unconstrained variables read 0)
  /// and survives later incremental blasting.
  uint64_t modelValue(TermRef t);

  /// Raw variable values of the last Sat model, by Var index.
  const std::unordered_map<uint32_t, uint64_t>& lastModel() const {
    return model_;
  }

  /// Abandon a query after this many SAT conflicts (0 = unlimited);
  /// exploration treats Unknown paths as not-taken and reports them.
  void setConflictBudget(uint64_t budget) {
    conflictBudget_ = budget;
    sat_.setConflictBudget(budget);
  }

  /// Per-query wall deadline, layered on the conflict budget: abandon a
  /// query (Unknown) once it has run this long on the query clock — the
  /// injected telemetry clock when attached, the system clock otherwise.
  /// 0 = unlimited.
  void setQueryTimeoutMicros(uint64_t us) { queryTimeoutMicros_ = us; }

  /// Absolute wall deadline shared by *all* queries (0 = none): the
  /// explorer sets this to its own budget's end so no single check()
  /// overshoots maxWallSeconds. A query starting past the deadline
  /// returns Unknown without touching the SAT core.
  void setWallDeadlineMicros(uint64_t us) { wallDeadlineMicros_ = us; }

  /// Debug cross-check: re-solve every query on a fresh single-shot solver
  /// and throw (with an SMT-LIB dump) if the incremental result diverges.
  /// Extremely slow; for tests and bug reports only.
  void setParanoid(bool on) { paranoid_ = on; }

  /// Query cache: exploration re-issues many identical feasibility checks
  /// (eager branch checks share prefixes with later full-path solves).
  /// Keyed on the assumption set; Sat entries replay their model. On by
  /// default; switchable for the E4 ablation.
  void setQueryCacheEnabled(bool on) { cacheEnabled_ = on; }
  uint64_t cacheHits() const { return cacheHits_; }

  struct Stats {
    uint64_t queries = 0;
    uint64_t sat = 0;
    uint64_t unsat = 0;
    uint64_t unknown = 0;
    uint64_t totalMicros = 0;
    uint64_t maxMicros = 0;
    /// Canonical per-query cost totals (see QueryCost): a cache miss adds
    /// the fresh-solve cost, a hit *replays* the stored cost, so these
    /// accumulate identically whichever caller took the miss. Observers
    /// read deltas of these to attribute solver cost per branch site.
    /// Keys the prefilter decided carry a canonical cost of zero — even
    /// when a model-needing caller forced a restoration solve — so the
    /// totals stay independent of which caller took the miss.
    QueryCost canon;
    /// Abstract-prefilter buckets; see SolverTelemetry for the invariants.
    uint64_t preConsulted = 0;
    uint64_t preSat = 0;
    uint64_t preUnsat = 0;
    uint64_t preFallback = 0;
    uint64_t preShortcircuit = 0;
    uint64_t directSolves = 0;
    uint64_t preCoreConstraints = 0;
    /// Model restorations: needModel checks served by a model-less
    /// prefiltered Sat entry. Which issuance of a key pays the
    /// restoration is scheduling-dependent, so this never reaches the
    /// stats JSON — it exists for logs and tests.
    uint64_t preModelRestores = 0;
    /// Per-issuance prefilter provenance, replayed from the cache on hits
    /// (preTag): a query whose key was judged conclusively counts as a
    /// "seen hit" every time it is issued, a judged-but-fallen-through
    /// key as a "seen miss". Observers read deltas of these to attribute
    /// prefilter effectiveness per branch site, schedule-independently.
    uint64_t preHitSeen = 0;
    uint64_t preMissSeen = 0;
  };
  const Stats& stats() const { return stats_; }
  const SatSolver::Stats& satStats() const { return sat_.stats(); }
  const BitBlaster::Stats& blastStats() const { return bb_.stats(); }

  /// Aggregate every layer's stats into one snapshot (see SolverTelemetry).
  SolverTelemetry telemetrySnapshot() const;

  /// Attach a telemetry bundle (may be null to detach): records the
  /// solver.query_us latency histogram, query/cache counters and
  /// solver_query trace events; forwarded to the SAT core and the
  /// bit-blaster for their own counters.
  void setTelemetry(telemetry::Telemetry* t);

  /// Attach a query-capture listener (null to detach). Every check() —
  /// including cache hits and short-circuited unsat checks — is reported.
  void setQueryListener(QueryListener* l) { listener_ = l; }

  /// Attach an *additional* listener (not owned, never detached): lets the
  /// event bus observe queries alongside a --query-log capture. Reported
  /// after the primary listener, in attachment order.
  void addQueryListener(QueryListener* l) {
    if (l != nullptr) extraListeners_.push_back(l);
  }

  /// Solve assumptions /\ permanent asserts on a throwaway solver (no state
  /// shared with this instance). Used by paranoid mode and tests.
  CheckResult checkFresh(const std::vector<TermRef>& assumptions);

  /// Fresh-solve mode (parallel exploration, docs/parallelism.md): every
  /// check() runs on a throwaway SAT core instead of the incremental one,
  /// so the CNF — and hence any Sat model — depends only on term structure,
  /// never on what this instance solved before. Slower per query, but the
  /// canonical models are what make -j1 and -jN byte-identical; the shared
  /// QueryCache (below) recovers the lost incrementality.
  void setFreshMode(bool on) { freshMode_ = on; }
  bool freshMode() const { return freshMode_; }

  /// Attach the run-wide shared query cache (not owned; null detaches).
  /// Only consulted in fresh mode: hits replay the canonical verdict and
  /// model, misses are solved fresh and published single-flight.
  void setSharedCache(QueryCache* c) { sharedCache_ = c; }

  /// Attach the abstract pre-solver (not owned; null detaches — the
  /// default). When attached, every cache miss is judged abstractly
  /// before any bit-blasting: a conclusive Unsat always short-circuits
  /// the solve, a conclusive Sat short-circuits it for checkNoModel()
  /// callers and triggers an off-the-books model restoration for
  /// check() callers. Per-worker, shared-nothing, like the term pool.
  void setPreSolver(PreSolver* p) { pre_ = p; }
  bool prefilterEnabled() const { return pre_ != nullptr; }

  /// One row of the profiler's query-shape table: queries grouped by the
  /// bit-width bucket of their canonical terms-blasted count. Sums are
  /// schedule-independent when aggregated over all workers: every
  /// issuance of a key carries the same replayed canonical cost, and a
  /// key with n issuances contributes exactly n-1 hits in total (under an
  /// unbounded cache) no matter which worker took the miss.
  struct ShapeRow {
    uint64_t queries = 0;
    uint64_t hits = 0;  // served from a cache (local or shared)
    uint64_t sat = 0;
    uint64_t unsat = 0;
    uint64_t unknown = 0;
    QueryCost cost;

    ShapeRow& operator+=(const ShapeRow& o) {
      queries += o.queries;
      hits += o.hits;
      sat += o.sat;
      unsat += o.unsat;
      unknown += o.unknown;
      cost += o.cost;
      return *this;
    }
  };

  /// Enable per-shape accumulation (profiler runs only; off by default).
  void setShapeProfiling(bool on) { shapeProfiling_ = on; }
  /// Rows keyed by bit_width(canonical terms) — 0 for cost-free
  /// short-circuited checks. std::map keeps emission order canonical.
  const std::map<unsigned, ShapeRow>& queryShapes() const { return shapes_; }

 private:
  CheckResult checkImpl(const std::vector<TermRef>& assumptions,
                        bool needModel);

  /// Fresh-mode miss path: solve on a throwaway core, snapshot the model
  /// into model_ on Sat, aggregate the core's stats into the fresh
  /// counters.
  CheckResult solveFreshWithModel(const std::vector<TermRef>& assumptions,
                                  telemetry::Clock* clk, uint64_t deadlineUs);

  /// Model restoration for a prefilter-certified Sat query: solve the
  /// canonical CNF on a throwaway core with no budget, no deadline, no
  /// telemetry and no stats aggregation — deliberately off the books, so
  /// whether (and where) a restoration happens can never perturb the
  /// schedule-independent counters. Fills model_; throws if the core
  /// disagrees with the certificate (an absdom soundness bug).
  void restoreModelFresh(const std::vector<TermRef>& assumptions);

  TermManager& tm_;
  SatSolver sat_;
  BitBlaster bb_;
  std::vector<TermRef> permanentAsserts_;
  bool paranoid_ = false;
  bool permanentlyUnsat_ = false;
  std::unordered_map<uint32_t, uint64_t> model_;  // Var index -> value

  struct CacheEntry {
    CheckResult result = CheckResult::Unknown;
    std::unordered_map<uint32_t, uint64_t> model;  // for Sat entries
    QueryCost cost;  // replayed on hits (see Stats::canon)
    bool hasModel = true;   // false: prefiltered Sat, model not computed
    uint8_t preTag = 0;     // provenance, replayed on hits (see qcache.h)
  };
  bool cacheEnabled_ = true;
  std::unordered_map<std::string, CacheEntry> queryCache_;
  uint64_t cacheHits_ = 0;
  uint64_t queryTimeoutMicros_ = 0;
  uint64_t wallDeadlineMicros_ = 0;
  uint64_t conflictBudget_ = 0;

  bool freshMode_ = false;
  QueryCache* sharedCache_ = nullptr;
  PreSolver* pre_ = nullptr;
  // Aggregates over the throwaway cores of fresh mode (the members sat_/bb_
  // sit unused there); telemetrySnapshot() reads these instead.
  SatSolver::Stats freshSat_;
  BitBlaster::Stats freshBlast_;
  uint64_t freshVars_ = 0;
  uint64_t freshClauses_ = 0;

  Stats stats_;

  bool shapeProfiling_ = false;
  std::map<unsigned, ShapeRow> shapes_;

  QueryListener* listener_ = nullptr;
  std::vector<QueryListener*> extraListeners_;

  // Telemetry (null when detached; hot paths branch on the pointers).
  telemetry::Telemetry* tel_ = nullptr;
  telemetry::Histogram* queryHist_ = nullptr;
  telemetry::Counter* queryCtr_ = nullptr;
  telemetry::Counter* cacheHitCtr_ = nullptr;
  telemetry::Counter* cacheMissCtr_ = nullptr;
  telemetry::Counter* preHitCtr_ = nullptr;
  telemetry::Counter* preMissCtr_ = nullptr;
};

}  // namespace adlsym::smt
