// Incremental SMT(QF_BV) facade: simplify (at build time) -> bit-blast ->
// CDCL. One SmtSolver instance serves every path-feasibility query of an
// exploration run; path conditions are passed as assumptions so learned
// clauses are shared across paths. This is the repo's Z3 substitute
// (DESIGN.md, substitutions).
#pragma once

#include <chrono>
#include <cstdint>
#include <vector>

#include "smt/bitblast.h"
#include "smt/sat.h"
#include "smt/term.h"

namespace adlsym::smt {

enum class CheckResult { Sat, Unsat, Unknown };

class SmtSolver {
 public:
  explicit SmtSolver(TermManager& tm) : tm_(tm), bb_(tm, sat_) {}

  TermManager& termManager() { return tm_; }

  /// Permanently assert a width-1 term (conjoined with every later check).
  void assertAlways(TermRef t);

  /// Check satisfiability of the permanent assertions plus the given
  /// width-1 assumption terms.
  CheckResult check(const std::vector<TermRef>& assumptions);

  /// Model value of a term after a Sat result. The model is snapshotted at
  /// Sat time, so this works for any term (unconstrained variables read 0)
  /// and survives later incremental blasting.
  uint64_t modelValue(TermRef t);

  /// Raw variable values of the last Sat model, by Var index.
  const std::unordered_map<uint32_t, uint64_t>& lastModel() const {
    return model_;
  }

  /// Abandon a query after this many SAT conflicts (0 = unlimited);
  /// exploration treats Unknown paths as not-taken and reports them.
  void setConflictBudget(uint64_t budget) { sat_.setConflictBudget(budget); }

  /// Debug cross-check: re-solve every query on a fresh single-shot solver
  /// and throw (with an SMT-LIB dump) if the incremental result diverges.
  /// Extremely slow; for tests and bug reports only.
  void setParanoid(bool on) { paranoid_ = on; }

  /// Query cache: exploration re-issues many identical feasibility checks
  /// (eager branch checks share prefixes with later full-path solves).
  /// Keyed on the assumption set; Sat entries replay their model. On by
  /// default; switchable for the E4 ablation.
  void setQueryCacheEnabled(bool on) { cacheEnabled_ = on; }
  uint64_t cacheHits() const { return cacheHits_; }

  struct Stats {
    uint64_t queries = 0;
    uint64_t sat = 0;
    uint64_t unsat = 0;
    uint64_t unknown = 0;
    uint64_t totalMicros = 0;
    uint64_t maxMicros = 0;
  };
  const Stats& stats() const { return stats_; }
  const SatSolver::Stats& satStats() const { return sat_.stats(); }
  const BitBlaster::Stats& blastStats() const { return bb_.stats(); }

  /// Solve assumptions /\ permanent asserts on a throwaway solver (no state
  /// shared with this instance). Used by paranoid mode and tests.
  CheckResult checkFresh(const std::vector<TermRef>& assumptions);

 private:
  TermManager& tm_;
  SatSolver sat_;
  BitBlaster bb_;
  std::vector<TermRef> permanentAsserts_;
  bool paranoid_ = false;
  bool permanentlyUnsat_ = false;
  std::unordered_map<uint32_t, uint64_t> model_;  // Var index -> value

  struct CacheEntry {
    CheckResult result = CheckResult::Unknown;
    std::unordered_map<uint32_t, uint64_t> model;  // for Sat entries
  };
  bool cacheEnabled_ = true;
  std::unordered_map<std::string, CacheEntry> queryCache_;
  uint64_t cacheHits_ = 0;

  Stats stats_;
};

}  // namespace adlsym::smt
