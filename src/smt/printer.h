// Debug/printing utilities for the term DAG: s-expression rendering and a
// full SMT-LIB 2 dump that external solvers can replay.
#pragma once

#include <string>
#include <vector>

#include "smt/term.h"

namespace adlsym::smt {

/// Render one term as a (possibly shared-subterm-duplicating) s-expression,
/// e.g. "(bvadd x #x00000004)". Depth-capped to stay readable.
std::string toString(TermRef t, unsigned maxDepth = 32);

/// Produce a complete SMT-LIB 2 script asserting the conjunction of the
/// given width-1 terms, with declare-const lines for every variable used.
std::string toSmtLib(const std::vector<TermRef>& asserts);

}  // namespace adlsym::smt
