#include "smt/printer.h"

#include <set>
#include <sstream>

#include "support/strings.h"

namespace adlsym::smt {

namespace {

void hexConst(std::ostringstream& os, uint64_t v, unsigned w) {
  if (w % 4 == 0) {
    os << "#x";
    for (int nib = static_cast<int>(w) / 4 - 1; nib >= 0; --nib)
      os << "0123456789abcdef"[(v >> (nib * 4)) & 0xf];
  } else {
    os << "#b";
    for (int bit = static_cast<int>(w) - 1; bit >= 0; --bit)
      os << (((v >> bit) & 1) ? '1' : '0');
  }
}

void render(std::ostringstream& os, const TermManager& tm, TermId id,
            unsigned depth, unsigned maxDepth) {
  const TermNode& n = tm.node(id);
  if (depth > maxDepth) {
    os << "...";
    return;
  }
  switch (n.kind) {
    case Kind::Const:
      hexConst(os, n.aux, n.width);
      return;
    case Kind::Var:
      os << tm.varName(id);
      return;
    case Kind::Extract: {
      os << "((_ extract " << (n.aux >> 8) << ' ' << (n.aux & 0xff) << ") ";
      render(os, tm, n.a, depth + 1, maxDepth);
      os << ')';
      return;
    }
    default: {
      os << '(' << kindName(n.kind);
      for (const TermId op : {n.a, n.b, n.c}) {
        if (op == kInvalidTerm) break;
        os << ' ';
        render(os, tm, op, depth + 1, maxDepth);
      }
      os << ')';
      return;
    }
  }
}

void collectVars(const TermManager& tm, TermId id, std::set<TermId>& vars,
                 std::set<TermId>& visited) {
  if (!visited.insert(id).second) return;
  const TermNode& n = tm.node(id);
  if (n.kind == Kind::Var) {
    vars.insert(id);
    return;
  }
  for (const TermId op : {n.a, n.b, n.c}) {
    if (op != kInvalidTerm) collectVars(tm, op, vars, visited);
  }
}

}  // namespace

std::string toString(TermRef t, unsigned maxDepth) {
  if (!t.valid()) return "<invalid>";
  std::ostringstream os;
  render(os, *t.manager(), t.id(), 0, maxDepth);
  return os.str();
}

std::string toSmtLib(const std::vector<TermRef>& asserts) {
  std::ostringstream os;
  os << "(set-logic QF_BV)\n";
  std::set<TermId> vars;
  std::set<TermId> visited;
  const TermManager* tm = nullptr;
  for (const TermRef t : asserts) {
    if (!t.valid()) continue;
    tm = t.manager();
    collectVars(*tm, t.id(), vars, visited);
  }
  if (tm != nullptr) {
    for (const TermId v : vars) {
      os << "(declare-const " << tm->varName(v) << " (_ BitVec "
         << static_cast<unsigned>(tm->node(v).width) << "))\n";
    }
  }
  for (const TermRef t : asserts) {
    if (!t.valid()) continue;
    // Width-1 terms are bitvectors here; compare against #b1 to get a Bool.
    os << "(assert (= " << toString(t, 10000) << " #b1))\n";
  }
  os << "(check-sat)\n";
  return os.str();
}

}  // namespace adlsym::smt
