#include "baseline/rv32_engine.h"

#include "core/checkers.h"
#include "support/bits.h"
#include "support/strings.h"

namespace adlsym::baseline {

using core::CheckSite;
using core::DefectKind;
using core::MachineState;
using core::StepOut;
using smt::TermRef;

namespace {
// Field accessors for this repo's rv32e encodings (see share/isa/rv32e.adl;
// note these are NOT standard RISC-V layouts). R/I/U/J types follow the
// familiar positions, but S/B types have no rd slot, so their funct3/rs1/
// rs2 sit 5 bits lower: [imm12:12][rs2:5][rs1:5][funct3:3][opcode:7].
unsigned fOpcode(uint32_t w) { return w & 0x7f; }
unsigned fRd(uint32_t w) { return (w >> 7) & 0x1f; }
unsigned fFunct3(uint32_t w) { return (w >> 12) & 0x7; }      // R/I-type
unsigned fRs1(uint32_t w) { return (w >> 15) & 0x1f; }        // R/I-type
unsigned fRs2(uint32_t w) { return (w >> 20) & 0x1f; }        // R-type
unsigned fFunct7(uint32_t w) { return w >> 25; }
unsigned fFunct3SB(uint32_t w) { return (w >> 7) & 0x7; }     // S/B-type
unsigned fRs1SB(uint32_t w) { return (w >> 10) & 0x1f; }      // S/B-type
unsigned fRs2SB(uint32_t w) { return (w >> 15) & 0x1f; }      // S/B-type
uint64_t fImm12(uint32_t w) { return w >> 20; }               // I/S/B-type
uint64_t fImm20(uint32_t w) { return w >> 12; }               // U/J-type
int64_t sImm12(uint32_t w) { return asSigned(fImm12(w), 12); }
int64_t sImm20(uint32_t w) { return asSigned(fImm20(w), 20); }
}  // namespace

MachineState Rv32Engine::initialState() {
  MachineState st;
  st.memory = core::SymMemory(&svc_.image);
  st.pc = svc_.image.entry();
  st.regfile.assign(16, svc_.tm.mkConst(32, 0));
  return st;
}

void Rv32Engine::finish(MachineState&& st, uint64_t nextPc, StepOut& out) {
  ++st.steps;
  st.pc = truncTo(nextPc, 32);
  out.successors.push_back(std::move(st));
}

void Rv32Engine::finishSymbolic(MachineState&& st, TermRef nextPc,
                                StepOut& out) {
  if (nextPc.isConst()) {
    finish(std::move(st), nextPc.constValue(), out);
    return;
  }
  smt::TermManager& tm = svc_.tm;
  ++st.steps;
  std::vector<TermRef> blocking = st.pathCond;
  for (unsigned i = 0; i < svc_.config.maxIndirectTargets; ++i) {
    if (svc_.solver.check(blocking) != smt::CheckResult::Sat) return;
    const uint64_t target = svc_.solver.modelValue(nextPc);
    MachineState succ = st;
    succ.addConstraint(tm.mkEq(nextPc, tm.mkConst(32, target)));
    succ.pc = target;
    ++succ.forks;
    out.successors.push_back(std::move(succ));
    blocking.push_back(tm.mkNe(nextPc, tm.mkConst(32, target)));
  }
  if (svc_.solver.check(blocking) == smt::CheckResult::Sat) {
    st.status = core::PathStatus::Budget;
    out.successors.push_back(std::move(st));
  }
}

void Rv32Engine::branch(MachineState&& st, TermRef cond, uint64_t target,
                        uint64_t fallThrough, StepOut& out) {
  if (cond.isConst()) {
    finish(std::move(st), cond.constValue() ? target : fallThrough, out);
    return;
  }
  const TermRef notCond = svc_.tm.mkNot(cond);
  const bool takenOk =
      !svc_.config.eagerFeasibility || svc_.feasible(st, cond);
  const bool fallOk =
      !svc_.config.eagerFeasibility || svc_.feasible(st, notCond);
  if (takenOk && fallOk) {
    MachineState taken = st;
    taken.addConstraint(cond);
    ++taken.forks;
    finish(std::move(taken), target, out);
    st.addConstraint(notCond);
    ++st.forks;
    finish(std::move(st), fallThrough, out);
    return;
  }
  if (takenOk) {
    st.addConstraint(cond);
    finish(std::move(st), target, out);
  } else if (fallOk) {
    st.addConstraint(notCond);
    finish(std::move(st), fallThrough, out);
  }
}

void Rv32Engine::step(const MachineState& in, StepOut& out) {
  smt::TermManager& tm = svc_.tm;
  const loader::Image& image = svc_.image;

  // Fetch (little endian).
  uint32_t word = 0;
  bool mapped = true;
  for (unsigned i = 0; i < 4; ++i) {
    const auto b = image.byteAt(in.pc + i);
    if (!b) {
      mapped = false;
      break;
    }
    word |= static_cast<uint32_t>(*b) << (8 * i);
  }

  auto illegal = [&](const char* why) {
    MachineState bad = in;
    bad.status = core::PathStatus::Illegal;
    core::Defect def;
    def.kind = DefectKind::IllegalInsn;
    def.pc = in.pc;
    def.message = why;
    def.witness = svc_.solveWitness(in);
    bad.defect = std::move(def);
    out.successors.push_back(std::move(bad));
  };
  if (!mapped) {
    illegal("unmapped instruction fetch");
    return;
  }

  MachineState st = in;
  const uint64_t next = in.pc + 4;
  const unsigned rd = fRd(word);
  const unsigned rs1 = fRs1(word);
  const unsigned rs2 = fRs2(word);
  CheckSite site{in.pc, "rv32"};

  // x0 is hardwired to zero.
  auto R = [&](unsigned idx) -> TermRef {
    if (idx >= 16) return TermRef();
    return idx == 0 ? tm.mkConst(32, 0) : st.regfile[idx];
  };
  auto W = [&](unsigned idx, TermRef v) {
    if (idx != 0 && idx < 16) st.regfile[idx] = v;
  };
  auto regsOk = [&](std::initializer_list<unsigned> idxs) {
    for (const unsigned i : idxs) {
      if (i >= 16) return false;
    }
    return true;
  };
  auto imm12s = [&]() { return tm.mkConst(32, static_cast<uint64_t>(sImm12(word))); };

  switch (fOpcode(word)) {
    case 0b0110011: {  // register ALU
      if (!regsOk({rd, rs1, rs2})) return illegal("register index >= 16");
      const TermRef a = R(rs1);
      const TermRef b = R(rs2);
      const unsigned f3 = fFunct3(word);
      const unsigned f7 = fFunct7(word);
      const TermRef sh = tm.mkAnd(b, tm.mkConst(32, 31));
      TermRef v;
      if (f7 == 0) {
        switch (f3) {
          case 0: v = tm.mkAdd(a, b); break;
          case 1: v = tm.mkShl(a, sh); break;
          case 2: v = tm.mkZExt(tm.mkSlt(a, b), 32); break;
          case 3: v = tm.mkZExt(tm.mkUlt(a, b), 32); break;
          case 4: v = tm.mkXor(a, b); break;
          case 5: v = tm.mkLShr(a, sh); break;
          case 6: v = tm.mkOr(a, b); break;
          case 7: v = tm.mkAnd(a, b); break;
        }
      } else if (f7 == 0b0100000) {
        if (f3 == 0) v = tm.mkSub(a, b);
        else if (f3 == 5) v = tm.mkAShr(a, sh);
      } else if (f7 == 1) {  // M extension
        switch (f3) {
          case 0: v = tm.mkMul(a, b); break;
          case 4: case 5: case 6: case 7: {
            if (!core::guardDivisor(svc_, st, out, b, site)) return;
            v = f3 == 4   ? tm.mkSDiv(a, b)
                : f3 == 5 ? tm.mkUDiv(a, b)
                : f3 == 6 ? tm.mkSRem(a, b)
                          : tm.mkURem(a, b);
            break;
          }
        }
      } else if (f7 == 2 && f3 == 0) {  // addv: checked signed add
        const TermRef s = tm.mkAdd(a, b);
        const TermRef zero = tm.mkConst(32, 0);
        const TermRef ovf = tm.mkOr(
            tm.mkAnd(tm.mkAnd(tm.mkSge(a, zero), tm.mkSge(b, zero)),
                     tm.mkSlt(s, zero)),
            tm.mkAnd(tm.mkAnd(tm.mkSlt(a, zero), tm.mkSlt(b, zero)),
                     tm.mkSge(s, zero)));
        if (ovf.isTrue()) {
          core::emitDefect(svc_, st, out, DefectKind::Trap, site,
                           "trap(1) reached", TermRef(), 1);
          return;
        }
        if (!ovf.isFalse()) {
          const bool ovfFeasible =
              !svc_.config.eagerFeasibility || svc_.feasible(st, ovf);
          if (ovfFeasible) {
            core::emitDefect(svc_, st, out, DefectKind::Trap, site,
                             "trap(1) reached", ovf, 1);
          }
          const TermRef noOvf = tm.mkNot(ovf);
          if (!svc_.feasible(st, noOvf)) return;
          st.addConstraint(noOvf);
        }
        v = s;
      }
      if (!v.valid()) return illegal("unknown ALU function");
      W(rd, v);
      finish(std::move(st), next, out);
      return;
    }

    case 0b0010011: {  // immediate ALU
      if (!regsOk({rd, rs1})) return illegal("register index >= 16");
      const TermRef a = R(rs1);
      const TermRef imm = imm12s();
      TermRef v;
      switch (fFunct3(word)) {
        case 0: v = tm.mkAdd(a, imm); break;
        case 1: v = tm.mkShl(a, tm.mkConst(32, fImm12(word) & 31)); break;
        case 2: v = tm.mkZExt(tm.mkSlt(a, imm), 32); break;
        case 3: v = tm.mkZExt(tm.mkUlt(a, imm), 32); break;
        case 4: v = tm.mkXor(a, imm); break;
        case 5: v = tm.mkLShr(a, tm.mkConst(32, fImm12(word) & 31)); break;
        case 6: v = tm.mkOr(a, imm); break;
        case 7: v = tm.mkAnd(a, imm); break;
      }
      W(rd, v);
      finish(std::move(st), next, out);
      return;
    }

    case 0b0000011: {  // loads
      if (!regsOk({rd, rs1})) return illegal("register index >= 16");
      const TermRef addr = tm.mkAdd(R(rs1), imm12s());
      unsigned size = 0;
      bool sign = false;
      switch (fFunct3(word)) {
        case 0: size = 1; sign = true; break;
        case 1: size = 2; sign = true; break;
        case 2: size = 4; break;
        case 4: size = 1; break;
        case 5: size = 2; break;
        default: return illegal("unknown load width");
      }
      const TermRef raw =
          core::checkedLoad(svc_, st, out, addr, size, /*bigEndian=*/false, site);
      if (!raw.valid()) return;
      W(rd, sign ? tm.mkSExt(raw, 32) : tm.mkZExt(raw, 32));
      finish(std::move(st), next, out);
      return;
    }

    case 0b0100011: {  // stores (S-type field positions)
      const unsigned srs1 = fRs1SB(word);
      const unsigned srs2 = fRs2SB(word);
      if (!regsOk({srs1, srs2})) return illegal("register index >= 16");
      const TermRef addr = tm.mkAdd(R(srs1), imm12s());
      unsigned size = 0;
      switch (fFunct3SB(word)) {
        case 0: size = 1; break;
        case 1: size = 2; break;
        case 2: size = 4; break;
        default: return illegal("unknown store width");
      }
      const TermRef v =
          size == 4 ? R(srs2) : tm.mkExtract(R(srs2), size * 8 - 1, 0);
      if (!core::checkedStore(svc_, st, out, addr, v, size, false, site)) return;
      finish(std::move(st), next, out);
      return;
    }

    case 0b1100011: {  // branches (B-type field positions)
      const unsigned brs1 = fRs1SB(word);
      const unsigned brs2 = fRs2SB(word);
      if (!regsOk({brs1, brs2})) return illegal("register index >= 16");
      const TermRef a = R(brs1);
      const TermRef b = R(brs2);
      TermRef cond;
      switch (fFunct3SB(word)) {
        case 0: cond = tm.mkEq(a, b); break;
        case 1: cond = tm.mkNe(a, b); break;
        case 4: cond = tm.mkSlt(a, b); break;
        case 5: cond = tm.mkSge(a, b); break;
        case 6: cond = tm.mkUlt(a, b); break;
        case 7: cond = tm.mkUge(a, b); break;
        default: return illegal("unknown branch condition");
      }
      // B-type reuses the S-type layout: imm12 is in the top 12 bits.
      const uint64_t target = truncTo(in.pc + static_cast<uint64_t>(sImm12(word)), 32);
      branch(std::move(st), cond, target, next, out);
      return;
    }

    case 0b0110111: {  // lui
      if (!regsOk({rd})) return illegal("register index >= 16");
      W(rd, tm.mkConst(32, truncTo(fImm20(word) << 12, 32)));
      finish(std::move(st), next, out);
      return;
    }

    case 0b1101111: {  // jal
      if (!regsOk({rd})) return illegal("register index >= 16");
      W(rd, tm.mkConst(32, truncTo(next, 32)));
      finish(std::move(st), truncTo(in.pc + static_cast<uint64_t>(sImm20(word)), 32), out);
      return;
    }

    case 0b1100111: {  // jalr
      if (!regsOk({rd, rs1})) return illegal("register index >= 16");
      const TermRef t = tm.mkAdd(R(rs1), imm12s());
      W(rd, tm.mkConst(32, truncTo(next, 32)));
      finishSymbolic(std::move(st), t, out);
      return;
    }

    case 0b1110111: {  // environment
      switch (fFunct3(word)) {
        case 0: case 1: {  // in8 / in32
          if (!regsOk({rd})) return illegal("register index >= 16");
          const unsigned w = fFunct3(word) == 0 ? 8 : 32;
          const std::string name =
              formatStr("in%u_w%u", st.inputCounter++, w);
          const TermRef v = tm.mkVar(w, name);
          st.inputs.push_back(core::InputRecord{name, w, v});
          W(rd, tm.mkZExt(v, 32));
          finish(std::move(st), next, out);
          return;
        }
        case 2: {  // out
          if (!regsOk({rs1})) return illegal("register index >= 16");
          st.outputs.push_back(core::OutputRecord{R(rs1), in.pc});
          finish(std::move(st), next, out);
          return;
        }
        case 3: {  // halt
          if (!regsOk({rs1})) return illegal("register index >= 16");
          st.status = core::PathStatus::Exited;
          st.exitCode = R(rs1);
          ++st.steps;
          out.successors.push_back(std::move(st));
          return;
        }
        case 4: {  // halti
          st.status = core::PathStatus::Exited;
          st.exitCode = tm.mkConst(32, fImm12(word));
          ++st.steps;
          out.successors.push_back(std::move(st));
          return;
        }
        default:
          return illegal("unknown environment call");
      }
    }

    case 0b1111011: {  // asrt
      if (!regsOk({rs1, rs2})) return illegal("register index >= 16");
      if (!core::guardAssertEq(svc_, st, out, R(rs1), R(rs2), site)) return;
      finish(std::move(st), next, out);
      return;
    }

    default:
      return illegal("unknown opcode");
  }
}

}  // namespace adlsym::baseline
