// Hand-written, non-retargetable symbolic executor for the rv32e ISA
// (DESIGN.md S9). This is the engine the ADL approach replaces: a switch-
// based decoder plus one hand-coded symbolic transfer function per
// instruction. It shares the SMT layer, machine state, memory model and
// checkers with the ADL engine so that experiment E2 isolates exactly the
// cost of interpreting ADL semantics instead of running compiled C++.
//
// Equivalence with the ADL rv32e model is enforced by differential tests
// (tests/baseline_test.cpp): both engines must produce identical path sets.
#pragma once

#include "core/executor.h"
#include "loader/image.h"

namespace adlsym::baseline {

class Rv32Engine : public core::Executor {
 public:
  explicit Rv32Engine(core::EngineServices& services) : svc_(services) {}

  std::string name() const override { return "baseline:rv32e"; }
  core::MachineState initialState() override;
  void step(const core::MachineState& in, core::StepOut& out) override;

 private:
  /// Fork on a symbolic branch condition: taken -> target, not-taken ->
  /// fall-through. Applies the same eager feasibility policy as the ADL
  /// engine.
  void branch(core::MachineState&& st, smt::TermRef cond, uint64_t target,
              uint64_t fallThrough, core::StepOut& out);
  void finish(core::MachineState&& st, uint64_t nextPc, core::StepOut& out);
  void finishSymbolic(core::MachineState&& st, smt::TermRef nextPc,
                      core::StepOut& out);

  core::EngineServices& svc_;
};

}  // namespace adlsym::baseline
