#include "loader/image.h"

#include <algorithm>
#include <sstream>

#include "support/error.h"
#include "support/fault.h"
#include "support/strings.h"

namespace adlsym::loader {

void Image::addSection(Section s) {
  for (const Section& existing : sections_) {
    const uint64_t lo = std::max(existing.base, s.base);
    const uint64_t hi = std::min(existing.end(), s.end());
    if (lo < hi) {
      throw Error("section '" + s.name + "' overlaps section '" +
                  existing.name + "'");
    }
  }
  sections_.push_back(std::move(s));
  std::sort(sections_.begin(), sections_.end(),
            [](const Section& a, const Section& b) { return a.base < b.base; });
}

std::optional<uint64_t> Image::symbol(const std::string& name) const {
  auto it = symbols_.find(name);
  if (it == symbols_.end()) return std::nullopt;
  return it->second;
}

const Section* Image::sectionAt(uint64_t addr) const {
  for (const Section& s : sections_) {
    if (s.contains(addr)) return &s;
  }
  return nullptr;
}

std::optional<uint8_t> Image::byteAt(uint64_t addr) const {
  const Section* s = sectionAt(addr);
  if (s == nullptr) return std::nullopt;
  return s->bytes[addr - s->base];
}

size_t Image::mappedBytes() const {
  size_t n = 0;
  for (const Section& s : sections_) n += s.bytes.size();
  return n;
}

std::string Image::serialize() const {
  std::ostringstream os;
  os << "image v1\n";
  os << "entry 0x" << std::hex << entry_ << std::dec << '\n';
  for (const auto& [name, addr] : symbols_) {
    os << "symbol " << name << " 0x" << std::hex << addr << std::dec << '\n';
  }
  for (const Section& s : sections_) {
    os << "section " << s.name << " 0x" << std::hex << s.base << std::dec
       << ' ' << (s.writable ? "rw" : "ro") << ' ' << s.bytes.size() << '\n';
    for (size_t i = 0; i < s.bytes.size(); ++i) {
      os << formatStr("%02x", s.bytes[i]);
      os << ((i % 32 == 31 || i + 1 == s.bytes.size()) ? '\n' : ' ');
    }
  }
  return os.str();
}

Image Image::deserialize(const std::string& text) {
  fault::hit("image.read");
  Image img;
  std::istringstream is(text);
  std::string line;
  size_t lineNo = 0;  // 1-based; every diagnostic carries it
  auto bad = [&](const std::string& what) {
    return InputError(formatStr("image:%zu: %s (line '%s')", lineNo,
                                what.c_str(), std::string(trim(line)).c_str()));
  };
  ++lineNo;
  if (!std::getline(is, line) || trim(line) != "image v1") {
    throw bad("bad header, expected 'image v1'");
  }
  while (std::getline(is, line)) {
    ++lineNo;
    const std::string_view t = trim(line);
    if (t.empty()) continue;
    std::istringstream ls{std::string(t)};
    std::string kw;
    ls >> kw;
    if (kw == "entry") {
      std::string v;
      ls >> v;
      const auto addr = parseInt(v);
      if (!addr) throw bad("bad entry address '" + v + "'");
      img.setEntry(*addr);
    } else if (kw == "symbol") {
      std::string name, v;
      ls >> name >> v;
      const auto addr = parseInt(v);
      if (!addr) throw bad("bad address '" + v + "' for symbol '" + name + "'");
      img.addSymbol(name, *addr);
    } else if (kw == "section") {
      Section s;
      std::string baseStr, perm;
      size_t size = 0;
      ls >> s.name >> baseStr >> perm >> size;
      const auto base = parseInt(baseStr);
      if (!base || (perm != "ro" && perm != "rw")) {
        throw bad("bad section header, expected "
                  "'section <name> <base> ro|rw <size>'");
      }
      s.base = *base;
      s.writable = perm == "rw";
      s.bytes.reserve(size);
      while (s.bytes.size() < size) {
        std::string hex;
        if (!(is >> hex)) {
          throw InputError(formatStr(
              "image: truncated data for section '%s' starting at line %zu: "
              "got %zu of %zu bytes",
              s.name.c_str(), lineNo, s.bytes.size(), size));
        }
        const auto byte = parseInt("0x" + hex);
        if (!byte || *byte > 0xff) {
          throw InputError(formatStr(
              "image: bad byte '%s' at offset %zu of section '%s' (line %zu)",
              hex.c_str(), s.bytes.size(), s.name.c_str(), lineNo));
        }
        s.bytes.push_back(static_cast<uint8_t>(*byte));
      }
      img.addSection(std::move(s));
    } else {
      throw bad("unknown directive '" + kw + "'");
    }
  }
  return img;
}

}  // namespace adlsym::loader
