// Program image: the loaded binary form the engine executes. Sections carry
// concrete bytes at fixed base addresses plus a writability attribute used
// by the out-of-bounds checker (DESIGN.md S6).
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <vector>

namespace adlsym::loader {

struct Section {
  std::string name;
  uint64_t base = 0;
  std::vector<uint8_t> bytes;
  bool writable = false;

  uint64_t end() const { return base + bytes.size(); }  // exclusive
  bool contains(uint64_t addr) const { return addr >= base && addr < end(); }
};

class Image {
 public:
  /// Add a section; overlapping sections are an error (throws).
  void addSection(Section s);

  void setEntry(uint64_t addr) { entry_ = addr; }
  uint64_t entry() const { return entry_; }

  void addSymbol(const std::string& name, uint64_t addr) { symbols_[name] = addr; }
  std::optional<uint64_t> symbol(const std::string& name) const;
  const std::map<std::string, uint64_t>& symbols() const { return symbols_; }

  const std::vector<Section>& sections() const { return sections_; }

  /// Concrete byte at an address, if mapped.
  std::optional<uint8_t> byteAt(uint64_t addr) const;
  bool isMapped(uint64_t addr) const { return sectionAt(addr) != nullptr; }
  bool isWritable(uint64_t addr) const {
    const Section* s = sectionAt(addr);
    return s != nullptr && s->writable;
  }
  const Section* sectionAt(uint64_t addr) const;

  /// Total mapped bytes (for reporting).
  size_t mappedBytes() const;

  /// Textual serialization (deterministic) and parsing, for storing test
  /// programs on disk. Format documented in docs/image-format.md.
  std::string serialize() const;
  static Image deserialize(const std::string& text);

 private:
  std::vector<Section> sections_;
  std::map<std::string, uint64_t> symbols_;
  uint64_t entry_ = 0;
};

}  // namespace adlsym::loader
