#include "asmgen/disasm.h"

#include <sstream>

#include "support/bits.h"
#include "support/strings.h"

namespace adlsym::asmgen {

std::string disassemble(const adl::ArchModel& model,
                        const decode::DecodedInsn& d, uint64_t addr) {
  const adl::InsnInfo& insn = *d.insn;
  std::ostringstream os;
  std::ostringstream targetHint;
  os << insn.name;
  if (!insn.syntaxPieces.empty()) os << ' ';
  for (const adl::SyntaxPiece& piece : insn.syntaxPieces) {
    if (!piece.isOperand) {
      os << piece.literal;
      continue;
    }
    const adl::OperandInfo& op = insn.operands[piece.operandIdx];
    const adl::EncFieldInfo& field = *insn.operandFields[op.fieldIndex];
    const uint64_t value = d.operandValues[op.fieldIndex];
    switch (op.kind) {
      case adl::OperandKind::Reg:
        os << model.regfile->name << value;
        break;
      case adl::OperandKind::Imm:
        // Immediates print signed when their sign bit is set: `-1`, not 255.
        os << asSigned(value, field.width);
        break;
      case adl::OperandKind::Rel: {
        // Print the byte offset — the assembler's integer form for %rel
        // operands, so disassembly re-assembles byte-identically. The
        // absolute target goes into a trailing comment (stripped on
        // re-assembly).
        const int64_t offset =
            asSigned(value, field.width) * static_cast<int64_t>(op.relScale);
        os << offset;
        const uint64_t target =
            truncTo(addr + static_cast<uint64_t>(offset), model.mem.addrWidth);
        targetHint << formatStr("  ; -> 0x%llx",
                                static_cast<unsigned long long>(target));
        break;
      }
      case adl::OperandKind::Abs:
        os << formatStr("0x%llx", static_cast<unsigned long long>(value));
        break;
    }
  }
  os << targetHint.str();
  return os.str();
}

std::string disassembleSection(const adl::ArchModel& model,
                               const loader::Image& image,
                               const std::string& sectionName) {
  std::ostringstream os;
  decode::Decoder decoder(model);
  for (const loader::Section& s : image.sections()) {
    if (s.name != sectionName) continue;
    uint64_t addr = s.base;
    while (addr < s.end()) {
      const decode::DecodedInsn* d = decoder.decodeAt(image, addr);
      if (d == nullptr) {
        os << formatStr("%08llx:  .byte 0x%02x\n",
                        static_cast<unsigned long long>(addr),
                        *image.byteAt(addr));
        ++addr;
        continue;
      }
      os << formatStr("%08llx:  ", static_cast<unsigned long long>(addr))
         << disassemble(model, *d, addr) << '\n';
      addr += d->lengthBytes;
    }
  }
  return os.str();
}

}  // namespace adlsym::asmgen
