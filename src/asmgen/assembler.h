// Retargetable two-pass assembler (DESIGN.md S5). The mnemonic table,
// operand syntax and encodings all come from the ArchModel, so the same
// assembler serves every ISA described in the ADL. This is what lets one
// workload corpus target rv32e, m16 and acc8 alike (experiment E6).
//
// Assembly dialect:
//   ; # //           comments
//   .section NAME BASE [rw|ro]   start a new output section (default ro)
//   .entry LABEL|ADDR            program entry point
//   .byte v, v, ...              literal bytes
//   .word v, ...                 wordsize-wide values, arch endianness
//   .space N [fill]              N filler bytes
//   label:                       label at current address
//   <mnemonic> <operands>        per the instruction's ADL syntax template
#pragma once

#include <optional>
#include <string_view>

#include "adl/model.h"
#include "loader/image.h"
#include "support/diag.h"

namespace adlsym::asmgen {

class Assembler {
 public:
  explicit Assembler(const adl::ArchModel& model) : model_(model) {}

  /// Assemble a full translation unit into an image. Returns nullopt on
  /// errors (reported via `diags`).
  std::optional<loader::Image> assemble(std::string_view source,
                                        DiagEngine& diags) const;

 private:
  const adl::ArchModel& model_;
};

}  // namespace adlsym::asmgen
