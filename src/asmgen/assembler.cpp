#include "asmgen/assembler.h"

#include <cctype>
#include <map>

#include "support/bits.h"
#include "support/strings.h"

namespace adlsym::asmgen {

namespace {

struct Line {
  unsigned number = 0;
  std::string label;   // label defined on this line (without ':')
  std::string op;      // directive (with '.') or mnemonic; empty if none
  std::string rest;    // operand text
};

std::string stripComment(std::string_view raw) {
  for (size_t i = 0; i < raw.size(); ++i) {
    const char c = raw[i];
    if (c == ';' || c == '#') return std::string(raw.substr(0, i));
    if (c == '/' && i + 1 < raw.size() && raw[i + 1] == '/')
      return std::string(raw.substr(0, i));
  }
  return std::string(raw);
}

std::vector<Line> splitLines(std::string_view source, DiagEngine& diags) {
  std::vector<Line> out;
  unsigned lineNo = 0;
  for (std::string& rawLine : splitString(source, '\n')) {
    ++lineNo;
    std::string text = stripComment(rawLine);
    std::string_view t = trim(text);
    if (t.empty()) continue;
    Line line;
    line.number = lineNo;
    // Optional leading "label:".
    size_t i = 0;
    while (i < t.size() &&
           (std::isalnum(static_cast<unsigned char>(t[i])) || t[i] == '_' ||
            t[i] == '.'))
      ++i;
    if (i > 0 && i < t.size() && t[i] == ':' && t[0] != '.') {
      line.label = std::string(t.substr(0, i));
      t = trim(t.substr(i + 1));
    }
    if (!t.empty()) {
      size_t j = 0;
      while (j < t.size() && !std::isspace(static_cast<unsigned char>(t[j]))) ++j;
      line.op = std::string(t.substr(0, j));
      line.rest = std::string(trim(t.substr(j)));
    }
    if (line.label.empty() && line.op.empty()) {
      diags.error({line.number, 1}, "malformed line");
      continue;
    }
    out.push_back(std::move(line));
  }
  return out;
}

struct PendingSection {
  loader::Section section;
  uint64_t cursor = 0;  // == section.base + section.bytes.size()
};

class AsmPass {
 public:
  AsmPass(const adl::ArchModel& model, DiagEngine& diags)
      : model_(model), diags_(diags) {}

  std::optional<loader::Image> run(std::string_view source) {
    std::vector<Line> lines = splitLines(source, diags_);
    if (diags_.hasErrors()) return std::nullopt;
    // Pass 1: sizes and labels.
    pass2_ = false;
    runPass(lines);
    if (diags_.hasErrors()) return std::nullopt;
    // Pass 2: encoding.
    pass2_ = true;
    sections_.clear();
    current_ = nullptr;
    entry_.reset();
    runPass(lines);
    if (diags_.hasErrors()) return std::nullopt;

    loader::Image image;
    for (auto& [name, ps] : sections_) {
      if (!ps.section.bytes.empty()) image.addSection(std::move(ps.section));
    }
    for (const auto& [name, addr] : labels_) image.addSymbol(name, addr);
    if (entry_) {
      image.setEntry(*entry_);
    } else if (auto start = image.symbol("_start")) {
      image.setEntry(*start);
    } else if (!image.sections().empty()) {
      image.setEntry(image.sections().front().base);
    }
    return image;
  }

 private:
  void error(unsigned lineNo, std::string msg) {
    diags_.error({lineNo, 1}, std::move(msg));
  }

  PendingSection& currentSection(unsigned lineNo) {
    if (current_ == nullptr) {
      // Implicit default section.
      auto [it, inserted] = sections_.try_emplace("text");
      if (inserted) {
        it->second.section.name = "text";
        it->second.section.base = 0;
        it->second.cursor = 0;
      }
      current_ = &it->second;
      (void)lineNo;
    }
    return *current_;
  }

  void emitByte(unsigned lineNo, uint8_t b) {
    PendingSection& ps = currentSection(lineNo);
    ps.section.bytes.push_back(b);
    ++ps.cursor;
  }

  uint64_t here(unsigned lineNo) { return currentSection(lineNo).cursor; }

  std::optional<uint64_t> evalValue(unsigned lineNo, std::string_view text) {
    text = trim(text);
    if (auto v = parseInt(text)) return v;
    // Label reference.
    const std::string name(text);
    if (auto it = labels_.find(name); it != labels_.end()) return it->second;
    if (pass2_) {
      error(lineNo, "undefined symbol '" + name + "'");
    }
    return pass2_ ? std::nullopt : std::optional<uint64_t>(0);
  }

  void runPass(const std::vector<Line>& lines);
  void doDirective(const Line& line);
  void doInsn(const Line& line, const adl::InsnInfo& insn);
  std::optional<uint64_t> parseOperand(const Line& line,
                                       const adl::OperandInfo& op,
                                       const adl::EncFieldInfo& field,
                                       std::string_view text, uint64_t insnAddr);

  const adl::ArchModel& model_;
  DiagEngine& diags_;
  bool pass2_ = false;
  std::map<std::string, PendingSection> sections_;
  PendingSection* current_ = nullptr;
  std::map<std::string, uint64_t> labels_;
  std::optional<uint64_t> entry_;
};

void AsmPass::runPass(const std::vector<Line>& lines) {
  for (const Line& line : lines) {
    if (!line.label.empty()) {
      const uint64_t addr = here(line.number);
      if (!pass2_) {
        if (labels_.count(line.label)) {
          error(line.number, "duplicate label '" + line.label + "'");
        }
        labels_[line.label] = addr;
      } else if (labels_.at(line.label) != addr) {
        error(line.number, "internal: label address drift between passes");
      }
    }
    if (line.op.empty()) continue;
    if (line.op[0] == '.') {
      doDirective(line);
      continue;
    }
    const adl::InsnInfo* insn = model_.findInsn(line.op);
    if (insn == nullptr) {
      error(line.number, "unknown mnemonic '" + line.op + "' for " + model_.name);
      continue;
    }
    doInsn(line, *insn);
  }
}

void AsmPass::doDirective(const Line& line) {
  const std::string& d = line.op;
  if (d == ".section") {
    // .section NAME BASE [rw|ro]
    std::vector<std::string> parts;
    for (auto& p : splitString(line.rest, ' ')) {
      if (!trim(p).empty()) parts.emplace_back(trim(p));
    }
    if (parts.size() < 2) {
      error(line.number, ".section requires a name and base address");
      return;
    }
    const auto base = parseInt(parts[1]);
    if (!base) {
      error(line.number, "bad section base '" + parts[1] + "'");
      return;
    }
    const bool writable = parts.size() > 2 && parts[2] == "rw";
    auto [it, inserted] = sections_.try_emplace(parts[0]);
    if (inserted) {
      it->second.section.name = parts[0];
      it->second.section.base = *base;
      it->second.section.writable = writable;
      it->second.cursor = *base;
    } else if (it->second.section.base != *base) {
      error(line.number, "section '" + parts[0] + "' redeclared at a different base");
      return;
    }
    current_ = &it->second;
    return;
  }
  if (d == ".entry") {
    const auto v = evalValue(line.number, line.rest);
    if (pass2_ && v) entry_ = *v;
    return;
  }
  if (d == ".byte" || d == ".word") {
    const unsigned size = d == ".byte" ? 1 : model_.wordSize / 8;
    for (const std::string& part : splitString(line.rest, ',')) {
      const auto v = evalValue(line.number, part);
      if (!v) continue;
      uint64_t value = *v;
      if (!fitsUnsigned(value, size * 8) &&
          !fitsSigned(static_cast<int64_t>(value), size * 8)) {
        error(line.number, formatStr("value does not fit in %u byte(s)", size));
      }
      value = truncTo(value, size * 8);
      for (unsigned i = 0; i < size; ++i) {
        const unsigned shift = model_.endianLittle ? 8 * i : 8 * (size - 1 - i);
        emitByte(line.number, static_cast<uint8_t>((value >> shift) & 0xff));
      }
    }
    return;
  }
  if (d == ".space") {
    std::vector<std::string> parts = splitString(line.rest, ',');
    const auto n = evalValue(line.number, parts[0]);
    uint64_t fill = 0;
    if (parts.size() > 1) {
      if (const auto f = evalValue(line.number, parts[1])) fill = *f;
    }
    if (!n) return;
    for (uint64_t i = 0; i < *n; ++i)
      emitByte(line.number, static_cast<uint8_t>(fill));
    return;
  }
  error(line.number, "unknown directive '" + d + "'");
}

std::optional<uint64_t> AsmPass::parseOperand(const Line& line,
                                              const adl::OperandInfo& op,
                                              const adl::EncFieldInfo& field,
                                              std::string_view text,
                                              uint64_t insnAddr) {
  text = trim(text);
  if (text.empty()) {
    error(line.number, "missing operand for field '" + field.name + "'");
    return std::nullopt;
  }
  switch (op.kind) {
    case adl::OperandKind::Reg: {
      const std::string& prefix = model_.regfile->name;
      if (!startsWith(text, prefix)) {
        error(line.number, formatStr("expected register operand ('%s<N>'), got '%.*s'",
                                     prefix.c_str(), static_cast<int>(text.size()),
                                     text.data()));
        return std::nullopt;
      }
      const auto num = parseInt(text.substr(prefix.size()));
      if (!num || *num >= model_.regfile->count) {
        error(line.number, formatStr("bad register '%.*s'",
                                     static_cast<int>(text.size()), text.data()));
        return std::nullopt;
      }
      if (!fitsUnsigned(*num, field.width)) {
        error(line.number, formatStr("register number %llu does not fit field '%s'",
                                     static_cast<unsigned long long>(*num),
                                     field.name.c_str()));
        return std::nullopt;
      }
      return *num;
    }
    case adl::OperandKind::Imm: {
      // Integers or label references (e.g. materializing a data address).
      const auto v = evalValue(line.number, text);
      if (!v) {
        error(line.number, formatStr("bad immediate '%.*s'",
                                     static_cast<int>(text.size()), text.data()));
        return std::nullopt;
      }
      if (!fitsUnsigned(*v, field.width) &&
          !fitsSigned(static_cast<int64_t>(*v), field.width)) {
        error(line.number, formatStr("immediate does not fit %u-bit field '%s'",
                                     field.width, field.name.c_str()));
        return std::nullopt;
      }
      return truncTo(*v, field.width);
    }
    case adl::OperandKind::Rel: {
      const auto target = evalValue(line.number, text);
      if (!target) return std::nullopt;
      // Integers are relative offsets already; labels become target - insn.
      int64_t offset;
      if (parseInt(text)) {
        offset = static_cast<int64_t>(*target);
      } else {
        offset = static_cast<int64_t>(*target) - static_cast<int64_t>(insnAddr);
      }
      if (op.relScale > 1) {
        if (offset % static_cast<int64_t>(op.relScale) != 0) {
          error(line.number,
                formatStr("branch offset %lld is not a multiple of %u",
                          static_cast<long long>(offset), op.relScale));
          return std::nullopt;
        }
        offset /= static_cast<int64_t>(op.relScale);
      }
      if (pass2_ && !fitsSigned(offset, field.width)) {
        error(line.number,
              formatStr("branch target out of range: offset %lld does not fit "
                        "%u-bit field '%s'",
                        static_cast<long long>(offset), field.width,
                        field.name.c_str()));
        return std::nullopt;
      }
      return truncTo(static_cast<uint64_t>(offset), field.width);
    }
    case adl::OperandKind::Abs: {
      const auto v = evalValue(line.number, text);
      if (!v) return std::nullopt;
      if (pass2_ && !fitsUnsigned(*v, field.width)) {
        error(line.number, formatStr("address 0x%llx does not fit %u-bit field '%s'",
                                     static_cast<unsigned long long>(*v),
                                     field.width, field.name.c_str()));
        return std::nullopt;
      }
      return truncTo(*v, field.width);
    }
  }
  return std::nullopt;
}

void AsmPass::doInsn(const Line& line, const adl::InsnInfo& insn) {
  const uint64_t insnAddr = here(line.number);

  // Match operand text against the instruction's syntax template.
  const std::string& text = line.rest;
  size_t cursor = 0;
  auto skipSpace = [&]() {
    while (cursor < text.size() &&
           std::isspace(static_cast<unsigned char>(text[cursor])))
      ++cursor;
  };
  uint64_t word = insn.fixedMatch;
  bool failed = false;

  const auto& pieces = insn.syntaxPieces;
  for (size_t pi = 0; pi < pieces.size() && !failed; ++pi) {
    const adl::SyntaxPiece& piece = pieces[pi];
    if (!piece.isOperand) {
      for (const char c : piece.literal) {
        if (std::isspace(static_cast<unsigned char>(c))) continue;
        skipSpace();
        if (cursor >= text.size() || text[cursor] != c) {
          error(line.number, formatStr("expected '%c' in operands of '%s'", c,
                                       insn.name.c_str()));
          failed = true;
          break;
        }
        ++cursor;
      }
      continue;
    }
    // Operand: consume until the next literal's first significant char.
    char stop = '\0';
    for (size_t pj = pi + 1; pj < pieces.size() && stop == '\0'; ++pj) {
      if (pieces[pj].isOperand) break;  // adjacent operands unsupported
      for (const char c : pieces[pj].literal) {
        if (!std::isspace(static_cast<unsigned char>(c))) {
          stop = c;
          break;
        }
      }
    }
    skipSpace();
    const size_t start = cursor;
    while (cursor < text.size()) {
      if (stop != '\0' && text[cursor] == stop) break;
      // Operand tokens never contain whitespace; stopping here lets the
      // trailing-characters check catch junk after the last operand.
      if (stop == '\0' &&
          std::isspace(static_cast<unsigned char>(text[cursor]))) {
        break;
      }
      ++cursor;
    }
    const std::string_view opText =
        trim(std::string_view(text).substr(start, cursor - start));
    const adl::OperandInfo& op = insn.operands[piece.operandIdx];
    const adl::EncFieldInfo& field = *insn.operandFields[op.fieldIndex];
    const auto value = parseOperand(line, op, field, opText, insnAddr);
    if (!value) {
      failed = true;
      break;
    }
    word |= *value << field.lo;
  }
  skipSpace();
  if (!failed && cursor < text.size()) {
    error(line.number, "trailing characters after operands: '" +
                           text.substr(cursor) + "'");
    failed = true;
  }
  // Emit length bytes even on failure so pass-1 addresses stay aligned.
  for (unsigned i = 0; i < insn.lengthBytes; ++i) {
    const unsigned shift =
        model_.endianLittle ? 8 * i : 8 * (insn.lengthBytes - 1 - i);
    emitByte(line.number, static_cast<uint8_t>((word >> shift) & 0xff));
  }
}

}  // namespace

std::optional<loader::Image> Assembler::assemble(std::string_view source,
                                                 DiagEngine& diags) const {
  AsmPass pass(model_, diags);
  auto image = pass.run(source);
  if (diags.hasErrors()) return std::nullopt;
  return image;
}

}  // namespace adlsym::asmgen
