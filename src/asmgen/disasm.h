// Model-driven disassembler: renders a decoded instruction back through its
// ADL syntax template. Round-trips with the assembler (tested in
// tests/asm_test.cpp).
#pragma once

#include <string>

#include "adl/model.h"
#include "decode/decoder.h"
#include "loader/image.h"

namespace adlsym::asmgen {

/// Render one decoded instruction. `addr` is the instruction's address
/// (needed to print pc-relative operands as absolute targets).
std::string disassemble(const adl::ArchModel& model,
                        const decode::DecodedInsn& insn, uint64_t addr);

/// Disassemble a whole image section into "addr: text" lines.
std::string disassembleSection(const adl::ArchModel& model,
                               const loader::Image& image,
                               const std::string& sectionName);

}  // namespace adlsym::asmgen
