// Small bit-manipulation helpers shared by the SMT layer, the decoder
// generator and the assembler. All widths are in [1, 64].
#pragma once

#include <cstdint>

#include "support/error.h"

namespace adlsym {

/// Mask with the low `width` bits set. width must be in [1,64].
inline uint64_t lowMask(unsigned width) {
  check(width >= 1 && width <= 64, "lowMask width out of range");
  return width == 64 ? ~uint64_t{0} : ((uint64_t{1} << width) - 1);
}

/// Truncate `v` to `width` bits.
inline uint64_t truncTo(uint64_t v, unsigned width) { return v & lowMask(width); }

/// Sign-extend the low `width` bits of `v` to 64 bits.
inline uint64_t signExtend(uint64_t v, unsigned width) {
  const uint64_t m = uint64_t{1} << (width - 1);
  v = truncTo(v, width);
  return (v ^ m) - m;
}

/// Interpret the low `width` bits of `v` as a signed value.
inline int64_t asSigned(uint64_t v, unsigned width) {
  return static_cast<int64_t>(signExtend(v, width));
}

/// True if the signed value `v` fits in `width` bits (two's complement).
inline bool fitsSigned(int64_t v, unsigned width) {
  if (width >= 64) return true;
  const int64_t lo = -(int64_t{1} << (width - 1));
  const int64_t hi = (int64_t{1} << (width - 1)) - 1;
  return v >= lo && v <= hi;
}

/// True if the unsigned value `v` fits in `width` bits.
inline bool fitsUnsigned(uint64_t v, unsigned width) {
  return width >= 64 || v <= lowMask(width);
}

/// Extract bits [hi:lo] of v (inclusive).
inline uint64_t bitSlice(uint64_t v, unsigned hi, unsigned lo) {
  check(hi >= lo && hi < 64, "bitSlice range");
  return (v >> lo) & lowMask(hi - lo + 1);
}

}  // namespace adlsym
