// Content hashing for run manifests (docs/observability.md,
// adlsym-run-v1): a self-contained SHA-256 so artifact integrity checks
// (`adlsym verify-run`) need no external dependency. Streaming interface
// plus one-shot helpers for strings and files.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <string_view>

namespace adlsym::hash {

/// Incremental SHA-256 (FIPS 180-4). update() any number of times, then
/// hexDigest() exactly once; the instance is spent afterwards.
class Sha256 {
 public:
  Sha256();
  void update(const void* data, size_t len);
  /// Finalize and return the 64-char lowercase hex digest.
  std::string hexDigest();

 private:
  void compress(const uint8_t* block);

  uint32_t h_[8];
  uint64_t totalBytes_ = 0;
  uint8_t buf_[64];
  size_t bufLen_ = 0;
};

/// One-shot digest of a byte string.
std::string sha256Hex(std::string_view data);

/// Digest of a file's contents, streamed. Throws adlsym::InputError when
/// the file cannot be opened.
std::string sha256File(const std::string& path);

}  // namespace adlsym::hash
