#include "support/telemetry.h"

#include <bit>
#include <chrono>
#include <sstream>

#include "support/error.h"
#include "support/json.h"

namespace adlsym::telemetry {

namespace {

class SystemClock final : public Clock {
 public:
  uint64_t nowMicros() override {
    return static_cast<uint64_t>(
        std::chrono::duration_cast<std::chrono::microseconds>(
            std::chrono::steady_clock::now().time_since_epoch())
            .count());
  }
};

}  // namespace

Clock& Clock::system() {
  static SystemClock clock;
  return clock;
}

Telemetry& Telemetry::global() {
  static Telemetry instance;
  return instance;
}

// ---- histogram ----------------------------------------------------------

void Histogram::record(uint64_t v) {
  ++count_;
  sum_ += v;
  if (v > max_) max_ = v;
  size_t i = static_cast<size_t>(std::bit_width(v));
  if (i >= kBuckets) i = kBuckets - 1;
  ++buckets_[i];
}

uint64_t Histogram::bucketUpperBound(size_t i) {
  if (i + 1 >= kBuckets) return UINT64_MAX;
  return (uint64_t{1} << i) - 1;
}

// ---- registry -----------------------------------------------------------

void MetricsRegistry::writeJson(json::Writer& w) const {
  w.beginObject();
  w.key("counters").beginObject();
  for (const auto& [name, c] : counters_) w.kv(name, c.value);
  w.endObject();
  w.key("gauges").beginObject();
  for (const auto& [name, g] : gauges_) w.kv(name, g.value);
  w.endObject();
  w.key("histograms").beginObject();
  for (const auto& [name, h] : histograms_) {
    w.key(name).beginObject();
    w.kv("count", h.count());
    w.kv("sum", h.sum());
    w.kv("max", h.max());
    w.kv("mean", h.mean());
    w.key("buckets").beginArray();
    for (const uint64_t b : h.buckets()) w.value(b);
    w.endArray();
    w.endObject();
  }
  w.endObject();
  w.endObject();
}

std::string MetricsRegistry::toJson() const {
  std::ostringstream os;
  json::Writer w(os);
  writeJson(w);
  return os.str();
}

void MetricsRegistry::mergeFromJson(const json::Value& v) {
  const auto section = [&](const char* name) -> const json::Value* {
    const json::Value* s = v.find(name);
    if (s && !s->isObject()) {
      throw InputError(std::string("metrics: '") + name + "' is not an object");
    }
    return s;
  };
  if (const json::Value* cs = section("counters")) {
    for (const auto& [name, val] : cs->object) counters_[name].add(val.asU64());
  }
  if (const json::Value* gs = section("gauges")) {
    for (const auto& [name, val] : gs->object) gauges_[name].setMax(val.asI64());
  }
  if (const json::Value* hs = section("histograms")) {
    for (const auto& [name, val] : hs->object) {
      const json::Value* buckets = val.find("buckets");
      if (!buckets || !buckets->isArray() ||
          buckets->array.size() != Histogram::kBuckets) {
        throw InputError("metrics: histogram '" + name + "' has bad buckets");
      }
      std::array<uint64_t, Histogram::kBuckets> b{};
      for (size_t i = 0; i < b.size(); ++i) b[i] = buckets->array[i].asU64();
      const json::Value* count = val.find("count");
      const json::Value* sum = val.find("sum");
      const json::Value* max = val.find("max");
      if (!count || !sum || !max) {
        throw InputError("metrics: histogram '" + name + "' missing totals");
      }
      Histogram h;
      h.restore(count->asU64(), sum->asU64(), max->asU64(), b);
      histograms_[name].merge(h);
    }
  }
}

// ---- trace ---------------------------------------------------------------

const char* eventKindName(EventKind k) {
  switch (k) {
    case EventKind::Step: return "step";
    case EventKind::Fork: return "fork";
    case EventKind::Drop: return "drop";
    case EventKind::Merge: return "merge";
    case EventKind::SolverQuery: return "solver_query";
    case EventKind::PathDone: return "path_done";
    case EventKind::Defect: return "defect";
    case EventKind::Phase: return "phase";
    case EventKind::Heartbeat: return "heartbeat";
  }
  return "?";
}

void JsonlTraceSink::event(EventKind kind, uint64_t tMicros,
                           const std::vector<Field>& fields) {
  json::Writer w(os_);
  w.beginObject();
  w.kv("ev", eventKindName(kind));
  w.kv("t", tMicros);
  for (const Field& f : fields) {
    switch (f.type) {
      case Field::Type::U64: w.kv(f.key, f.u); break;
      case Field::Type::F64: w.kv(f.key, f.f); break;
      case Field::Type::Str: w.kv(f.key, std::string_view(f.s)); break;
    }
  }
  w.endObject();
  os_ << '\n';
  ++events_;
}

void Telemetry::emit(EventKind kind, std::initializer_list<Field> fields) {
  if (!sink_) return;
  sink_->event(kind, nowMicros(), std::vector<Field>(fields));
}

uint64_t ScopedTimer::stop() {
  if (done_ || !t_ || !h_) return 0;
  done_ = true;
  const uint64_t elapsed = t_->nowMicros() - start_;
  h_->record(elapsed);
  return elapsed;
}

}  // namespace adlsym::telemetry
