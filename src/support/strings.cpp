#include "support/strings.h"

#include <cctype>
#include <cstdarg>
#include <cstdio>

namespace adlsym {

std::vector<std::string> splitString(std::string_view s, char delim) {
  std::vector<std::string> out;
  size_t start = 0;
  while (true) {
    const size_t pos = s.find(delim, start);
    if (pos == std::string_view::npos) {
      out.emplace_back(s.substr(start));
      return out;
    }
    out.emplace_back(s.substr(start, pos - start));
    start = pos + 1;
  }
}

std::string_view trim(std::string_view s) {
  size_t b = 0;
  size_t e = s.size();
  while (b < e && std::isspace(static_cast<unsigned char>(s[b]))) ++b;
  while (e > b && std::isspace(static_cast<unsigned char>(s[e - 1]))) --e;
  return s.substr(b, e - b);
}

std::optional<uint64_t> parseInt(std::string_view s) {
  s = trim(s);
  if (s.empty()) return std::nullopt;
  bool neg = false;
  if (s[0] == '-') {
    neg = true;
    s.remove_prefix(1);
    if (s.empty()) return std::nullopt;
  }
  unsigned base = 10;
  if (s.size() > 2 && s[0] == '0') {
    const char k = static_cast<char>(std::tolower(static_cast<unsigned char>(s[1])));
    if (k == 'x') { base = 16; s.remove_prefix(2); }
    else if (k == 'b') { base = 2; s.remove_prefix(2); }
    else if (k == 'o') { base = 8; s.remove_prefix(2); }
  }
  if (s.empty()) return std::nullopt;
  uint64_t v = 0;
  for (char c : s) {
    if (c == '_') continue;  // digit separators allowed, e.g. 0b1010_0001
    unsigned digit;
    if (c >= '0' && c <= '9') digit = static_cast<unsigned>(c - '0');
    else if (c >= 'a' && c <= 'f') digit = static_cast<unsigned>(c - 'a') + 10;
    else if (c >= 'A' && c <= 'F') digit = static_cast<unsigned>(c - 'A') + 10;
    else return std::nullopt;
    if (digit >= base) return std::nullopt;
    const uint64_t next = v * base + digit;
    if (next / base != v) return std::nullopt;  // overflow
    v = next;
  }
  return neg ? uint64_t(0) - v : v;
}

std::string formatStr(const char* fmt, ...) {
  va_list args;
  va_start(args, fmt);
  va_list args2;
  va_copy(args2, args);
  const int n = std::vsnprintf(nullptr, 0, fmt, args);
  va_end(args);
  std::string out;
  if (n > 0) {
    out.resize(static_cast<size_t>(n));
    std::vsnprintf(out.data(), out.size() + 1, fmt, args2);
  }
  va_end(args2);
  return out;
}

bool startsWith(std::string_view s, std::string_view prefix) {
  return s.size() >= prefix.size() && s.substr(0, prefix.size()) == prefix;
}

}  // namespace adlsym
