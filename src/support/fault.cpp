#include "support/fault.h"

#include <algorithm>
#include <atomic>
#include <deque>
#include <new>

#include "support/strings.h"

namespace adlsym::fault {

namespace {

// Hit counters are atomics so parallel exploration workers can share a
// schedule: fetch_add hands exactly one thread the scheduled Nth hit, so
// exactly one InjectedFault is thrown per armed site regardless of --jobs.
// Arming/disarming itself still happens single-threaded (CLI dispatch,
// test fixtures), before/after the workers run.
struct SiteState {
  explicit SiteState(std::string n) : name(std::move(n)) {}
  std::string name;
  std::atomic<uint64_t> nth{0};   // 0 = not armed
  std::atomic<uint64_t> hits{0};  // counted since arm()
};

// One slot per known site, catalogue order. std::deque: atomics make
// SiteState immovable, and deque never relocates elements.
std::deque<SiteState>& slots() {
  static std::deque<SiteState> s = [] {
    std::deque<SiteState> v;
    for (const std::string& n : knownSites()) v.emplace_back(n);
    return v;
  }();
  return s;
}

std::atomic<bool> g_armed{false};

}  // namespace

const std::vector<std::string>& knownSites() {
  static const std::vector<std::string> sites = {
      "solver.check",  // every SmtSolver::check entry
      "image.read",    // loader::Image::deserialize entry
      "obs.write",     // every observability file write (stats/forest/qlog)
      "alloc",         // frontier state allocation (throws std::bad_alloc)
      "ckpt.write",    // checkpoint serialization entry (before the temp file)
      "ckpt.read",     // checkpoint load entry (--resume)
  };
  return sites;
}

void arm(const std::string& spec) {
  disarm();
  if (spec.empty()) return;
  for (const std::string& part : splitString(spec, ',')) {
    const size_t colon = part.rfind(':');
    if (colon == std::string::npos || colon == 0 || colon + 1 == part.size()) {
      throw InputError("bad fault spec '" + part +
                       "' (want <site>:<nth>, e.g. solver.check:1)");
    }
    const std::string site = part.substr(0, colon);
    const auto nth = parseInt(part.substr(colon + 1));
    if (!nth || *nth == 0) {
      throw InputError("bad fault count in '" + part + "' (want nth >= 1)");
    }
    auto& ss = slots();
    const auto it = std::find_if(ss.begin(), ss.end(),
                                 [&](const SiteState& s) { return s.name == site; });
    if (it == ss.end()) {
      std::string known;
      for (const std::string& n : knownSites()) {
        if (!known.empty()) known += ", ";
        known += n;
      }
      throw InputError("unknown fault site '" + site + "' (known: " + known + ")");
    }
    it->nth.store(*nth, std::memory_order_relaxed);
    g_armed.store(true, std::memory_order_release);
  }
}

void disarm() {
  for (SiteState& s : slots()) {
    s.nth.store(0, std::memory_order_relaxed);
    s.hits.store(0, std::memory_order_relaxed);
  }
  g_armed.store(false, std::memory_order_release);
}

bool armed() { return g_armed.load(std::memory_order_acquire); }

void hit(const char* site) {
  if (!g_armed.load(std::memory_order_acquire)) return;
  for (SiteState& s : slots()) {
    if (s.name != site) continue;
    const uint64_t nth = s.nth.load(std::memory_order_relaxed);
    if (nth == 0) return;
    const uint64_t count = s.hits.fetch_add(1, std::memory_order_relaxed) + 1;
    if (count == nth) {
      if (s.name == "alloc") throw std::bad_alloc();
      throw InjectedFault(s.name, count);
    }
    return;
  }
}

}  // namespace adlsym::fault
