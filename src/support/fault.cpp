#include "support/fault.h"

#include <algorithm>
#include <new>

#include "support/strings.h"

namespace adlsym::fault {

namespace {

struct SiteState {
  std::string name;
  uint64_t nth = 0;    // 0 = not armed
  uint64_t hits = 0;   // counted since arm()
};

// One slot per known site, catalogue order. Single-threaded by design,
// like the rest of the engine.
std::vector<SiteState>& slots() {
  static std::vector<SiteState> s = [] {
    std::vector<SiteState> v;
    for (const std::string& n : knownSites()) v.push_back({n, 0, 0});
    return v;
  }();
  return s;
}

bool g_armed = false;

}  // namespace

const std::vector<std::string>& knownSites() {
  static const std::vector<std::string> sites = {
      "solver.check",  // every SmtSolver::check entry
      "image.read",    // loader::Image::deserialize entry
      "obs.write",     // every observability file write (stats/forest/qlog)
      "alloc",         // frontier state allocation (throws std::bad_alloc)
  };
  return sites;
}

void arm(const std::string& spec) {
  disarm();
  if (spec.empty()) return;
  for (const std::string& part : splitString(spec, ',')) {
    const size_t colon = part.rfind(':');
    if (colon == std::string::npos || colon == 0 || colon + 1 == part.size()) {
      throw InputError("bad fault spec '" + part +
                       "' (want <site>:<nth>, e.g. solver.check:1)");
    }
    const std::string site = part.substr(0, colon);
    const auto nth = parseInt(part.substr(colon + 1));
    if (!nth || *nth == 0) {
      throw InputError("bad fault count in '" + part + "' (want nth >= 1)");
    }
    auto& ss = slots();
    const auto it = std::find_if(ss.begin(), ss.end(),
                                 [&](const SiteState& s) { return s.name == site; });
    if (it == ss.end()) {
      std::string known;
      for (const std::string& n : knownSites()) {
        if (!known.empty()) known += ", ";
        known += n;
      }
      throw InputError("unknown fault site '" + site + "' (known: " + known + ")");
    }
    it->nth = *nth;
    g_armed = true;
  }
}

void disarm() {
  for (SiteState& s : slots()) {
    s.nth = 0;
    s.hits = 0;
  }
  g_armed = false;
}

bool armed() { return g_armed; }

void hit(const char* site) {
  if (!g_armed) return;
  for (SiteState& s : slots()) {
    if (s.name != site) continue;
    if (s.nth == 0) return;
    if (++s.hits == s.nth) {
      if (s.name == "alloc") throw std::bad_alloc();
      throw InjectedFault(s.name, s.hits);
    }
    return;
  }
}

}  // namespace adlsym::fault
