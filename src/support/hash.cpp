#include "support/hash.h"

#include <cstring>
#include <fstream>

#include "support/error.h"

namespace adlsym::hash {

namespace {

constexpr uint32_t kK[64] = {
    0x428a2f98, 0x71374491, 0xb5c0fbcf, 0xe9b5dba5, 0x3956c25b, 0x59f111f1,
    0x923f82a4, 0xab1c5ed5, 0xd807aa98, 0x12835b01, 0x243185be, 0x550c7dc3,
    0x72be5d74, 0x80deb1fe, 0x9bdc06a7, 0xc19bf174, 0xe49b69c1, 0xefbe4786,
    0x0fc19dc6, 0x240ca1cc, 0x2de92c6f, 0x4a7484aa, 0x5cb0a9dc, 0x76f988da,
    0x983e5152, 0xa831c66d, 0xb00327c8, 0xbf597fc7, 0xc6e00bf3, 0xd5a79147,
    0x06ca6351, 0x14292967, 0x27b70a85, 0x2e1b2138, 0x4d2c6dfc, 0x53380d13,
    0x650a7354, 0x766a0abb, 0x81c2c92e, 0x92722c85, 0xa2bfe8a1, 0xa81a664b,
    0xc24b8b70, 0xc76c51a3, 0xd192e819, 0xd6990624, 0xf40e3585, 0x106aa070,
    0x19a4c116, 0x1e376c08, 0x2748774c, 0x34b0bcb5, 0x391c0cb3, 0x4ed8aa4a,
    0x5b9cca4f, 0x682e6ff3, 0x748f82ee, 0x78a5636f, 0x84c87814, 0x8cc70208,
    0x90befffa, 0xa4506ceb, 0xbef9a3f7, 0xc67178f2};

inline uint32_t rotr(uint32_t x, unsigned n) {
  return (x >> n) | (x << (32 - n));
}

}  // namespace

Sha256::Sha256() {
  h_[0] = 0x6a09e667;
  h_[1] = 0xbb67ae85;
  h_[2] = 0x3c6ef372;
  h_[3] = 0xa54ff53a;
  h_[4] = 0x510e527f;
  h_[5] = 0x9b05688c;
  h_[6] = 0x1f83d9ab;
  h_[7] = 0x5be0cd19;
}

void Sha256::compress(const uint8_t* block) {
  uint32_t w[64];
  for (int i = 0; i < 16; ++i) {
    w[i] = (uint32_t(block[i * 4]) << 24) | (uint32_t(block[i * 4 + 1]) << 16) |
           (uint32_t(block[i * 4 + 2]) << 8) | uint32_t(block[i * 4 + 3]);
  }
  for (int i = 16; i < 64; ++i) {
    const uint32_t s0 =
        rotr(w[i - 15], 7) ^ rotr(w[i - 15], 18) ^ (w[i - 15] >> 3);
    const uint32_t s1 =
        rotr(w[i - 2], 17) ^ rotr(w[i - 2], 19) ^ (w[i - 2] >> 10);
    w[i] = w[i - 16] + s0 + w[i - 7] + s1;
  }
  uint32_t a = h_[0], b = h_[1], c = h_[2], d = h_[3];
  uint32_t e = h_[4], f = h_[5], g = h_[6], h = h_[7];
  for (int i = 0; i < 64; ++i) {
    const uint32_t s1 = rotr(e, 6) ^ rotr(e, 11) ^ rotr(e, 25);
    const uint32_t ch = (e & f) ^ (~e & g);
    const uint32_t t1 = h + s1 + ch + kK[i] + w[i];
    const uint32_t s0 = rotr(a, 2) ^ rotr(a, 13) ^ rotr(a, 22);
    const uint32_t maj = (a & b) ^ (a & c) ^ (b & c);
    const uint32_t t2 = s0 + maj;
    h = g;
    g = f;
    f = e;
    e = d + t1;
    d = c;
    c = b;
    b = a;
    a = t1 + t2;
  }
  h_[0] += a;
  h_[1] += b;
  h_[2] += c;
  h_[3] += d;
  h_[4] += e;
  h_[5] += f;
  h_[6] += g;
  h_[7] += h;
}

void Sha256::update(const void* data, size_t len) {
  const uint8_t* p = static_cast<const uint8_t*>(data);
  totalBytes_ += len;
  if (bufLen_ != 0) {
    const size_t take = std::min(len, sizeof buf_ - bufLen_);
    std::memcpy(buf_ + bufLen_, p, take);
    bufLen_ += take;
    p += take;
    len -= take;
    if (bufLen_ == sizeof buf_) {
      compress(buf_);
      bufLen_ = 0;
    }
  }
  while (len >= sizeof buf_) {
    compress(p);
    p += sizeof buf_;
    len -= sizeof buf_;
  }
  if (len != 0) {
    std::memcpy(buf_, p, len);
    bufLen_ = len;
  }
}

std::string Sha256::hexDigest() {
  const uint64_t bitLen = totalBytes_ * 8;
  const uint8_t pad = 0x80;
  update(&pad, 1);
  const uint8_t zero = 0;
  while (bufLen_ != 56) update(&zero, 1);
  uint8_t lenBytes[8];
  for (int i = 0; i < 8; ++i) {
    lenBytes[i] = static_cast<uint8_t>(bitLen >> (56 - i * 8));
  }
  // update() counts these toward totalBytes_, but bitLen is already
  // latched, so the trailer encodes the true message length.
  update(lenBytes, 8);
  static const char* hex = "0123456789abcdef";
  std::string out;
  out.reserve(64);
  for (const uint32_t word : h_) {
    for (int i = 28; i >= 0; i -= 4) out += hex[(word >> i) & 0xf];
  }
  return out;
}

std::string sha256Hex(std::string_view data) {
  Sha256 s;
  s.update(data.data(), data.size());
  return s.hexDigest();
}

std::string sha256File(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw InputError("cannot open file '" + path + "' for hashing");
  Sha256 s;
  char buf[65536];
  while (in) {
    in.read(buf, sizeof buf);
    const std::streamsize n = in.gcount();
    if (n > 0) s.update(buf, static_cast<size_t>(n));
  }
  return s.hexDigest();
}

}  // namespace adlsym::hash
