#include "support/atomicio.h"

#include <cerrno>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>

#include <fcntl.h>
#include <unistd.h>

#include "support/error.h"

namespace adlsym::support {

namespace {

[[noreturn]] void fail(const std::string& path, const char* what) {
  throw InputError("cannot " + std::string(what) + " '" + path +
                   "': " + std::strerror(errno));
}

}  // namespace

void writeFileAtomic(const std::string& path, std::string_view contents) {
  const std::string tmp = path + ".tmp";
  const int fd = ::open(tmp.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
  if (fd < 0) fail(tmp, "create");
  size_t off = 0;
  while (off < contents.size()) {
    const ssize_t n = ::write(fd, contents.data() + off, contents.size() - off);
    if (n < 0) {
      if (errno == EINTR) continue;
      ::close(fd);
      ::unlink(tmp.c_str());
      fail(tmp, "write");
    }
    off += static_cast<size_t>(n);
  }
  // Durability before visibility: the rename must never expose bytes the
  // kernel has not committed.
  if (::fsync(fd) != 0) {
    ::close(fd);
    ::unlink(tmp.c_str());
    fail(tmp, "fsync");
  }
  if (::close(fd) != 0) {
    ::unlink(tmp.c_str());
    fail(tmp, "close");
  }
  if (::rename(tmp.c_str(), path.c_str()) != 0) {
    ::unlink(tmp.c_str());
    fail(path, "replace");
  }
}

std::string readFileBytes(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw InputError("cannot open '" + path + "'");
  std::ostringstream os;
  os << in.rdbuf();
  if (in.bad()) throw InputError("cannot read '" + path + "'");
  return os.str();
}

}  // namespace adlsym::support
