// String helpers used by the lexers, the assembler and table printers.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

namespace adlsym {

/// Split on a single delimiter; keeps empty fields.
std::vector<std::string> splitString(std::string_view s, char delim);

/// Strip ASCII whitespace from both ends.
std::string_view trim(std::string_view s);

/// Parse an integer literal with optional 0x/0b/0o prefix and optional
/// leading '-'. Returns nullopt on malformed input or overflow of uint64.
/// Negative values are returned two's-complement in 64 bits.
std::optional<uint64_t> parseInt(std::string_view s);

/// printf-style formatting into a std::string.
std::string formatStr(const char* fmt, ...) __attribute__((format(printf, 1, 2)));

/// True if `s` starts with `prefix`.
bool startsWith(std::string_view s, std::string_view prefix);

}  // namespace adlsym
