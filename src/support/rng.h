// Deterministic PRNG (xorshift128+) used by random search and workload
// generation. std::mt19937 is avoided so that sequences are identical across
// standard library implementations — exploration results must be
// reproducible bit-for-bit (DESIGN.md §6.5).
#pragma once

#include <cstdint>

namespace adlsym {

class Rng {
 public:
  explicit Rng(uint64_t seed = 0x9e3779b97f4a7c15ull) {
    // SplitMix64 seeding to avoid correlated low-entropy states.
    auto next = [&seed]() {
      seed += 0x9e3779b97f4a7c15ull;
      uint64_t z = seed;
      z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
      z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
      return z ^ (z >> 31);
    };
    s0_ = next();
    s1_ = next();
    if (s0_ == 0 && s1_ == 0) s1_ = 1;
  }

  uint64_t next() {
    uint64_t x = s0_;
    const uint64_t y = s1_;
    s0_ = y;
    x ^= x << 23;
    s1_ = x ^ y ^ (x >> 17) ^ (y >> 26);
    return s1_ + y;
  }

  /// Uniform value in [0, bound). bound must be nonzero.
  uint64_t below(uint64_t bound) { return next() % bound; }

  /// Uniform double in [0, 1).
  double unit() { return static_cast<double>(next() >> 11) * (1.0 / 9007199254740992.0); }

 private:
  uint64_t s0_ = 1;
  uint64_t s1_ = 2;
};

}  // namespace adlsym
