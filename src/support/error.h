// Error type used across the library for unrecoverable API misuse and
// malformed inputs that cannot be reported through a DiagEngine.
#pragma once

#include <stdexcept>
#include <string>

namespace adlsym {

/// Thrown for invariant violations and malformed inputs (e.g. assembling an
/// unknown mnemonic, evaluating RTL with a width mismatch that sema should
/// have rejected). Front-end user errors in ADL source are reported through
/// adl::DiagEngine instead and do not throw.
class Error : public std::runtime_error {
 public:
  explicit Error(const std::string& what) : std::runtime_error(what) {}
};

/// Malformed *user* input: unreadable files, bad image text, unknown ISA
/// names, invalid CLI flag values. The driver maps this to exit code 2
/// (bad input) instead of 4 (internal error); see docs/robustness.md.
class InputError : public Error {
 public:
  using Error::Error;
};

/// Internal consistency check that survives NDEBUG builds. Use for
/// conditions that indicate a bug in this library rather than bad user input.
inline void check(bool cond, const char* msg) {
  if (!cond) throw Error(std::string("internal error: ") + msg);
}

}  // namespace adlsym
