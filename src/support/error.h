// Error type used across the library for unrecoverable API misuse and
// malformed inputs that cannot be reported through a DiagEngine.
#pragma once

#include <stdexcept>
#include <string>

namespace adlsym {

/// Thrown for invariant violations and malformed inputs (e.g. assembling an
/// unknown mnemonic, evaluating RTL with a width mismatch that sema should
/// have rejected). Front-end user errors in ADL source are reported through
/// adl::DiagEngine instead and do not throw.
class Error : public std::runtime_error {
 public:
  explicit Error(const std::string& what) : std::runtime_error(what) {}
};

/// Internal consistency check that survives NDEBUG builds. Use for
/// conditions that indicate a bug in this library rather than bad user input.
inline void check(bool cond, const char* msg) {
  if (!cond) throw Error(std::string("internal error: ") + msg);
}

}  // namespace adlsym
