// Bench regression comparator (docs/observability.md): diffs a freshly
// produced bench JSON report (tools/bench_to_json.sh) against a committed
// BENCH_*.json baseline, metric by metric. Timing metrics get a relative
// tolerance (they are machine-noisy by nature), throughput metrics the
// same in the opposite direction, percent/ratio strings a numeric drift
// band, and everything else — counts, verdicts, labels — must match
// exactly, because the engine is deterministic and a silent count drift
// is itself a regression. tools/bench_diff is the CLI over this; CI runs
// it report-only on every build.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "support/json.h"

namespace adlsym::benchcmp {

struct Options {
  /// Relative tolerance (percent) for time-like metrics ("*-ms", "*-us");
  /// only slower-than-baseline beyond this is a regression.
  double timeTolPct = 25.0;
  /// Relative tolerance for throughput metrics ("*-kips", "*/s"); only
  /// lower-than-baseline beyond this is a regression.
  double rateTolPct = 25.0;
  /// Relative drift band for "1.2x"-style ratio strings (direction-
  /// agnostic: these mix overheads and speedups).
  double ratioTolPct = 25.0;
  /// Absolute drift band, in percentage points, for "85%"-style cells.
  double pctTolPoints = 5.0;
  /// Per-metric overrides of the relative tolerance (metric name ->
  /// percent); applies to time/rate/ratio metrics.
  std::map<std::string, double> metricTolPct;
};

/// How one metric column is judged, derived from its name and value form.
enum class MetricClass { Time, Rate, Ratio, Percent, Exact, Text };

MetricClass classifyMetric(const std::string& name, const json::Value& v);

struct Issue {
  enum class Kind {
    Structure,    // missing table/row/metric or shape mismatch — fails
    Regression,   // worse than baseline beyond tolerance — fails
    Drift,        // exact/banded metric moved — fails
    Improvement,  // better than baseline beyond tolerance — informational
  };
  Kind kind = Kind::Structure;
  std::string where;   // "<table>[<row>]"
  std::string metric;  // column name ("" for structural issues)
  std::string detail;  // human-readable old -> new with the tolerance
};

struct Report {
  std::vector<Issue> issues;
  uint64_t comparedTables = 0;
  uint64_t comparedRows = 0;
  uint64_t comparedMetrics = 0;

  bool failed() const;  // any non-Improvement issue
  std::string formatText(const std::string& name) const;
};

/// Structural validation of one bench document ({"command":"bench",
/// "tables":[{label,rows:[{...}]}]}). Returns "" when well-formed, else
/// the first problem. bench_to_json.sh gates on this (--validate) so a
/// truncated run never installs a partial JSON.
std::string validate(const json::Value& doc);

/// Diff `fresh` against `baseline` (both validated bench documents).
/// Tables are matched by label, rows by index; the top-level "schema" is
/// deliberately ignored so committed baselines survive stats-schema
/// bumps.
Report compare(const json::Value& baseline, const json::Value& fresh,
               const Options& opt);

}  // namespace adlsym::benchcmp
