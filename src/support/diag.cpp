#include "support/diag.h"

#include <sstream>

namespace adlsym {

void DiagEngine::error(SourceLoc loc, std::string msg) {
  diags_.push_back({Severity::Error, loc, std::move(msg)});
  ++errorCount_;
}

void DiagEngine::warning(SourceLoc loc, std::string msg) {
  diags_.push_back({Severity::Warning, loc, std::move(msg)});
}

void DiagEngine::note(SourceLoc loc, std::string msg) {
  diags_.push_back({Severity::Note, loc, std::move(msg)});
}

std::string DiagEngine::str() const {
  std::ostringstream os;
  for (const Diagnostic& d : diags_) {
    os << bufferName_;
    if (d.loc.valid()) os << ':' << d.loc.line << ':' << d.loc.col;
    os << ": ";
    switch (d.severity) {
      case Severity::Note: os << "note: "; break;
      case Severity::Warning: os << "warning: "; break;
      case Severity::Error: os << "error: "; break;
    }
    os << d.message << '\n';
  }
  return os.str();
}

}  // namespace adlsym
