#include "support/benchcmp.h"

#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <sstream>

namespace adlsym::benchcmp {

namespace {

bool endsWith(const std::string& s, const char* suffix) {
  const size_t n = std::char_traits<char>::length(suffix);
  return s.size() >= n && s.compare(s.size() - n, n, suffix) == 0;
}

/// "85%" -> 85, "1.2x" -> 1.2; false when the prefix is not numeric.
bool numericPrefix(const std::string& s, char suffix, double* out) {
  if (s.size() < 2 || s.back() != suffix) return false;
  const std::string body = s.substr(0, s.size() - 1);
  char* end = nullptr;
  const double d = std::strtod(body.c_str(), &end);
  if (end == nullptr || *end != '\0' || end == body.c_str()) return false;
  *out = d;
  return true;
}

std::string fmtNum(double v) {
  char buf[40];
  std::snprintf(buf, sizeof buf, "%.6g", v);
  return buf;
}

std::string render(const json::Value& v) {
  switch (v.kind) {
    case json::Value::Kind::Null: return "null";
    case json::Value::Kind::Bool: return v.boolean ? "true" : "false";
    case json::Value::Kind::Number: return fmtNum(v.number);
    case json::Value::Kind::String: return "\"" + v.str + "\"";
    case json::Value::Kind::Array: return "<array>";
    case json::Value::Kind::Object: return "<object>";
  }
  return "?";
}

const json::Value* findTable(const json::Value& doc, const std::string& label) {
  const json::Value* tables = doc.find("tables");
  if (tables == nullptr || !tables->isArray()) return nullptr;
  for (const json::Value& t : tables->array) {
    const json::Value* l = t.find("label");
    if (l != nullptr && l->isString() && l->str == label) return &t;
  }
  return nullptr;
}

}  // namespace

MetricClass classifyMetric(const std::string& name, const json::Value& v) {
  if (v.isNumber()) {
    if (endsWith(name, "-ms") || endsWith(name, "-us") ||
        name.rfind("ms(", 0) == 0 || name == "ms") {
      return MetricClass::Time;
    }
    if (endsWith(name, "-kips") || endsWith(name, "kips") ||
        endsWith(name, "/s")) {
      return MetricClass::Rate;
    }
    return MetricClass::Exact;
  }
  if (v.isString()) {
    double d;
    if (numericPrefix(v.str, '%', &d)) return MetricClass::Percent;
    if (numericPrefix(v.str, 'x', &d)) return MetricClass::Ratio;
  }
  return MetricClass::Text;
}

bool Report::failed() const {
  for (const Issue& i : issues) {
    if (i.kind != Issue::Kind::Improvement) return true;
  }
  return false;
}

std::string Report::formatText(const std::string& name) const {
  std::ostringstream os;
  uint64_t regressions = 0, drifts = 0, structure = 0, improvements = 0;
  for (const Issue& i : issues) {
    const char* kind = "";
    switch (i.kind) {
      case Issue::Kind::Structure: kind = "STRUCTURE"; ++structure; break;
      case Issue::Kind::Regression: kind = "REGRESSION"; ++regressions; break;
      case Issue::Kind::Drift: kind = "DRIFT"; ++drifts; break;
      case Issue::Kind::Improvement: kind = "improvement"; ++improvements; break;
    }
    os << "  " << kind << " " << i.where;
    if (!i.metric.empty()) os << " " << i.metric;
    os << ": " << i.detail << "\n";
  }
  std::ostringstream head;
  head << name << ": " << comparedTables << " tables, " << comparedRows
       << " rows, " << comparedMetrics << " metrics; " << regressions
       << " regressions, " << drifts << " drifts, " << structure
       << " structural, " << improvements << " improvements\n";
  return head.str() + os.str();
}

std::string validate(const json::Value& doc) {
  if (!doc.isObject()) return "top level is not an object";
  const json::Value* cmd = doc.find("command");
  if (cmd == nullptr || !cmd->isString() || cmd->str != "bench") {
    return "missing \"command\":\"bench\"";
  }
  const json::Value* tables = doc.find("tables");
  if (tables == nullptr || !tables->isArray()) return "missing tables array";
  if (tables->array.empty()) return "empty tables array";
  for (size_t t = 0; t < tables->array.size(); ++t) {
    const json::Value& table = tables->array[t];
    const std::string at = "tables[" + std::to_string(t) + "]";
    if (!table.isObject()) return at + " is not an object";
    const json::Value* label = table.find("label");
    if (label == nullptr || !label->isString() || label->str.empty()) {
      return at + " has no label";
    }
    const json::Value* rows = table.find("rows");
    if (rows == nullptr || !rows->isArray()) return at + " has no rows array";
    if (rows->array.empty()) return at + " (" + label->str + ") has no rows";
    for (size_t r = 0; r < rows->array.size(); ++r) {
      const json::Value& row = rows->array[r];
      if (!row.isObject() || row.object.empty()) {
        return at + ".rows[" + std::to_string(r) + "] is not a non-empty object";
      }
    }
  }
  return "";
}

Report compare(const json::Value& baseline, const json::Value& fresh,
               const Options& opt) {
  Report rep;
  auto add = [&rep](Issue::Kind kind, std::string where, std::string metric,
                    std::string detail) {
    rep.issues.push_back(Issue{kind, std::move(where), std::move(metric),
                               std::move(detail)});
  };

  const json::Value* baseTables = baseline.find("tables");
  if (baseTables == nullptr || !baseTables->isArray()) {
    add(Issue::Kind::Structure, "<doc>", "", "baseline has no tables");
    return rep;
  }
  for (const json::Value& baseTable : baseTables->array) {
    const json::Value* labelV = baseTable.find("label");
    const std::string label =
        labelV != nullptr && labelV->isString() ? labelV->str : "?";
    const json::Value* freshTable = findTable(fresh, label);
    if (freshTable == nullptr) {
      add(Issue::Kind::Structure, label, "", "table missing from fresh run");
      continue;
    }
    ++rep.comparedTables;
    const json::Value* baseRows = baseTable.find("rows");
    const json::Value* freshRows = freshTable->find("rows");
    if (baseRows == nullptr || freshRows == nullptr || !baseRows->isArray() ||
        !freshRows->isArray()) {
      add(Issue::Kind::Structure, label, "", "rows array missing");
      continue;
    }
    if (baseRows->array.size() != freshRows->array.size()) {
      add(Issue::Kind::Structure, label, "",
          "row count " + std::to_string(baseRows->array.size()) + " -> " +
              std::to_string(freshRows->array.size()));
      continue;
    }
    for (size_t r = 0; r < baseRows->array.size(); ++r) {
      const json::Value& baseRow = baseRows->array[r];
      const json::Value& freshRow = freshRows->array[r];
      const std::string where = label + "[" + std::to_string(r) + "]";
      ++rep.comparedRows;
      for (const auto& [metric, baseVal] : baseRow.object) {
        const json::Value* freshVal = freshRow.find(metric);
        if (freshVal == nullptr) {
          add(Issue::Kind::Structure, where, metric, "metric missing");
          continue;
        }
        ++rep.comparedMetrics;
        const MetricClass cls = classifyMetric(metric, baseVal);
        double relTol = opt.timeTolPct;
        if (cls == MetricClass::Rate) relTol = opt.rateTolPct;
        if (cls == MetricClass::Ratio) relTol = opt.ratioTolPct;
        if (const auto it = opt.metricTolPct.find(metric);
            it != opt.metricTolPct.end()) {
          relTol = it->second;
        }
        switch (cls) {
          case MetricClass::Time:
          case MetricClass::Rate: {
            if (!freshVal->isNumber()) {
              add(Issue::Kind::Structure, where, metric,
                  "expected a number, got " + render(*freshVal));
              break;
            }
            const double oldV = baseVal.number;
            const double newV = freshVal->number;
            // Worse = slower for Time, lower for Rate. Tolerance is
            // relative to the baseline, with a tiny absolute floor so
            // 0.01ms-scale cells do not flap.
            const double band =
                std::max(std::fabs(oldV) * relTol / 100.0, 1e-9);
            const double worse =
                cls == MetricClass::Time ? newV - oldV : oldV - newV;
            if (worse > band) {
              add(Issue::Kind::Regression, where, metric,
                  fmtNum(oldV) + " -> " + fmtNum(newV) + " (tol " +
                      fmtNum(relTol) + "%)");
            } else if (-worse > band) {
              add(Issue::Kind::Improvement, where, metric,
                  fmtNum(oldV) + " -> " + fmtNum(newV));
            }
            break;
          }
          case MetricClass::Ratio:
          case MetricClass::Percent: {
            double oldV = 0, newV = 0;
            const char suffix = cls == MetricClass::Ratio ? 'x' : '%';
            if (!freshVal->isString() ||
                !numericPrefix(freshVal->str, suffix, &newV)) {
              add(Issue::Kind::Structure, where, metric,
                  "expected a '" + std::string(1, suffix) + "' cell, got " +
                      render(*freshVal));
              break;
            }
            numericPrefix(baseVal.str, suffix, &oldV);
            const double band = cls == MetricClass::Percent
                                    ? opt.pctTolPoints
                                    : std::fabs(oldV) * relTol / 100.0;
            if (std::fabs(newV - oldV) > band) {
              add(Issue::Kind::Drift, where, metric,
                  baseVal.str + " -> " + freshVal->str);
            }
            break;
          }
          case MetricClass::Exact: {
            if (!freshVal->isNumber() || freshVal->number != baseVal.number) {
              add(Issue::Kind::Drift, where, metric,
                  render(baseVal) + " -> " + render(*freshVal));
            }
            break;
          }
          case MetricClass::Text: {
            const bool same = freshVal->kind == baseVal.kind &&
                              freshVal->str == baseVal.str &&
                              freshVal->boolean == baseVal.boolean &&
                              freshVal->number == baseVal.number;
            if (!same) {
              add(Issue::Kind::Drift, where, metric,
                  render(baseVal) + " -> " + render(*freshVal));
            }
            break;
          }
        }
      }
    }
  }
  return rep;
}

}  // namespace adlsym::benchcmp
