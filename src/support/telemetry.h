// Unified telemetry layer (docs/observability.md): a metrics registry of
// named counters / gauges / fixed-bucket latency histograms, RAII scoped
// timers, and a structured trace-event sink with a JSONL implementation.
// Every hot layer (engine, explorer, solver) takes an optional Telemetry*
// and is zero-cost when it is null: call sites branch on the pointer and
// no clock is read, no field is built, nothing allocates.
//
// The clock is injectable (ManualClock) so wall-budget paths and timer
// assertions are deterministic in tests.
#pragma once

#include <array>
#include <cstdint>
#include <initializer_list>
#include <map>
#include <ostream>
#include <string>
#include <vector>

namespace adlsym::json {
class Writer;
struct Value;
}

namespace adlsym::telemetry {

// ---- clock ------------------------------------------------------------

/// Monotonic microsecond clock. The process-wide default wraps
/// std::chrono::steady_clock; tests inject a ManualClock.
class Clock {
 public:
  virtual ~Clock() = default;
  virtual uint64_t nowMicros() = 0;
  static Clock& system();
};

/// Deterministic clock for tests: starts at 0 and advances only when told
/// to — either explicitly or by `stepMicros` on every read (so code that
/// polls elapsed time makes reproducible progress).
class ManualClock final : public Clock {
 public:
  explicit ManualClock(uint64_t stepMicros = 0) : step_(stepMicros) {}
  uint64_t nowMicros() override {
    const uint64_t t = now_;
    now_ += step_;
    return t;
  }
  void advance(uint64_t micros) { now_ += micros; }
  /// Value the next nowMicros() will return, without advancing. The
  /// checkpoint writer records the clock position this way so writing a
  /// checkpoint never consumes a read — a checkpointed run and its
  /// kill/resume replay see the same read sequence.
  uint64_t peekMicros() const { return now_; }

 private:
  uint64_t now_ = 0;
  uint64_t step_;
};

// ---- metrics ----------------------------------------------------------

struct Counter {
  uint64_t value = 0;
  void add(uint64_t d = 1) { value += d; }
};

struct Gauge {
  int64_t value = 0;
  void set(int64_t v) { value = v; }
  void setMax(int64_t v) {
    if (v > value) value = v;
  }
};

/// Fixed-bucket histogram for latency-like values (microseconds). Bucket i
/// counts values v with bit_width(v) == i, i.e. v in [2^(i-1), 2^i - 1]
/// (bucket 0 counts v == 0); the last bucket absorbs everything larger.
class Histogram {
 public:
  static constexpr size_t kBuckets = 24;  // last finite bound ~8.4 s

  void record(uint64_t v);
  uint64_t count() const { return count_; }
  uint64_t sum() const { return sum_; }
  uint64_t max() const { return max_; }
  double mean() const { return count_ ? double(sum_) / double(count_) : 0.0; }
  const std::array<uint64_t, kBuckets>& buckets() const { return buckets_; }
  /// Inclusive upper bound of bucket i (UINT64_MAX for the overflow bucket).
  static uint64_t bucketUpperBound(size_t i);

  /// Overwrite with recorded totals — checkpoint restore (adlsym-ckpt-v1).
  void restore(uint64_t count, uint64_t sum, uint64_t max,
               const std::array<uint64_t, kBuckets>& buckets) {
    count_ = count;
    sum_ = sum;
    max_ = max;
    buckets_ = buckets;
  }

  /// Fold another histogram in (bucket-wise sums; max of maxes). Used to
  /// merge per-worker registries after a parallel run.
  void merge(const Histogram& o) {
    count_ += o.count_;
    sum_ += o.sum_;
    if (o.max_ > max_) max_ = o.max_;
    for (size_t i = 0; i < kBuckets; ++i) buckets_[i] += o.buckets_[i];
  }

 private:
  uint64_t count_ = 0;
  uint64_t sum_ = 0;
  uint64_t max_ = 0;
  std::array<uint64_t, kBuckets> buckets_{};
};

/// Named metrics, created on first use. References returned remain valid
/// for the registry's lifetime (node-stable map storage), so hot paths
/// resolve a metric once and keep the pointer.
class MetricsRegistry {
 public:
  Counter& counter(const std::string& name) { return counters_[name]; }
  Gauge& gauge(const std::string& name) { return gauges_[name]; }
  Histogram& histogram(const std::string& name) { return histograms_[name]; }

  const std::map<std::string, Counter>& counters() const { return counters_; }
  const std::map<std::string, Gauge>& gauges() const { return gauges_; }
  const std::map<std::string, Histogram>& histograms() const {
    return histograms_;
  }

  /// Fold another registry in: counters add, gauges keep the maximum,
  /// histograms merge bucket-wise. Names only present in `o` are created.
  /// Used to merge per-worker registries into the main one after a
  /// parallel run (std::map keeps the union's JSON order canonical).
  void mergeFrom(const MetricsRegistry& o) {
    for (const auto& [name, c] : o.counters_) counters_[name].add(c.value);
    for (const auto& [name, g] : o.gauges_) gauges_[name].setMax(g.value);
    for (const auto& [name, h] : o.histograms_) histograms_[name].merge(h);
  }

  /// {"counters":{...},"gauges":{...},"histograms":{name:{count,sum,max,
  /// mean,buckets:[...]}}} — the "metrics" object of the stats schema.
  void writeJson(json::Writer& w) const;
  std::string toJson() const;

  /// Fold a parsed writeJson() document in, with mergeFrom() semantics
  /// (counters add, gauges setMax, histograms merge). Checkpoint restore:
  /// the consumed-budget baseline of a resumed run. Throws InputError on a
  /// malformed document.
  void mergeFromJson(const json::Value& v);

 private:
  std::map<std::string, Counter> counters_;
  std::map<std::string, Gauge> gauges_;
  std::map<std::string, Histogram> histograms_;
};

// ---- trace events ------------------------------------------------------

enum class EventKind : uint8_t {
  Step,         // one instruction symbolically executed
  Fork,         // a step produced >1 successors
  Drop,         // a step produced 0 successors (infeasible)
  Merge,        // veritesting merge of two frontier states
  SolverQuery,  // one SmtSolver::check
  PathDone,     // a path left the frontier with a terminal status
  Defect,       // a checker reported a defect
  Phase,        // begin/end markers of coarse stages
  Heartbeat,    // periodic progress report (obs::ProgressMeter)
};

const char* eventKindName(EventKind k);

/// One key/value of an event payload. Implicit constructors let call sites
/// write {"pc", pc}, {"status", "exited"}, {"seconds", 0.5}.
struct Field {
  enum class Type : uint8_t { U64, F64, Str } type;
  const char* key;
  uint64_t u = 0;
  double f = 0.0;
  std::string s;

  Field(const char* k, uint64_t v) : type(Type::U64), key(k), u(v) {}
  Field(const char* k, uint32_t v) : type(Type::U64), key(k), u(v) {}
  Field(const char* k, int v)
      : type(Type::U64), key(k), u(static_cast<uint64_t>(v)) {}
  Field(const char* k, double v) : type(Type::F64), key(k), f(v) {}
  Field(const char* k, const char* v) : type(Type::Str), key(k), s(v) {}
  Field(const char* k, std::string v) : type(Type::Str), key(k), s(std::move(v)) {}
};

class TraceSink {
 public:
  virtual ~TraceSink() = default;
  virtual void event(EventKind kind, uint64_t tMicros,
                     const std::vector<Field>& fields) = 0;
  virtual void flush() {}
};

/// One JSON object per line: {"ev":"fork","t":123,"pc":64,...}. `t` is
/// microseconds from the telemetry clock. The stream is borrowed, not
/// owned.
class JsonlTraceSink final : public TraceSink {
 public:
  explicit JsonlTraceSink(std::ostream& os) : os_(os) {}
  void event(EventKind kind, uint64_t tMicros,
             const std::vector<Field>& fields) override;
  void flush() override { os_.flush(); }
  uint64_t eventsWritten() const { return events_; }

 private:
  std::ostream& os_;
  uint64_t events_ = 0;
};

// ---- the bundle ---------------------------------------------------------

/// What components hold a pointer to: registry + clock + optional sink.
/// A process-wide instance exists (global()) but everything is injectable;
/// Session wires one per SessionOptions::telemetry.
class Telemetry {
 public:
  Telemetry() : clock_(&Clock::system()) {}
  explicit Telemetry(Clock& clock) : clock_(&clock) {}

  MetricsRegistry& metrics() { return metrics_; }
  const MetricsRegistry& metrics() const { return metrics_; }

  Clock& clock() { return *clock_; }
  void setClock(Clock& c) { clock_ = &c; }
  uint64_t nowMicros() { return clock_->nowMicros(); }

  void setSink(TraceSink* sink) { sink_ = sink; }
  TraceSink* sink() const { return sink_; }
  /// Guard before building Fields: `if (tel && tel->tracing()) tel->emit(...)`.
  bool tracing() const { return sink_ != nullptr; }

  /// Record an event at clock time now; no-op without a sink.
  void emit(EventKind kind, std::initializer_list<Field> fields);

  /// Process-wide default instance (injectable everywhere; nothing uses it
  /// implicitly).
  static Telemetry& global();

 private:
  MetricsRegistry metrics_;
  Clock* clock_;
  TraceSink* sink_ = nullptr;
};

/// RAII timer: records elapsed microseconds into a histogram at scope
/// exit. Both pointers may be null — the timer is then a no-op and never
/// reads the clock.
class ScopedTimer {
 public:
  ScopedTimer(Telemetry* t, Histogram* h) : t_(t), h_(h) {
    if (t_ && h_) start_ = t_->nowMicros();
  }
  ~ScopedTimer() { stop(); }
  ScopedTimer(const ScopedTimer&) = delete;
  ScopedTimer& operator=(const ScopedTimer&) = delete;

  /// Record now instead of at scope exit; returns elapsed micros (0 when
  /// disabled). Idempotent.
  uint64_t stop();

 private:
  Telemetry* t_;
  Histogram* h_;
  uint64_t start_ = 0;
  bool done_ = false;
};

}  // namespace adlsym::telemetry
