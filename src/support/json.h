// Minimal streaming JSON writer used by the telemetry layer, the CLI's
// --stats-json output and the bench JSON reports, plus the matching
// reader (Value + parse) used by tools/bench_diff to load documents the
// writer produced. The writer emits compact (no whitespace) JSON; commas
// and nesting are tracked automatically so call sites read like the
// document they produce.
#pragma once

#include <cstdint>
#include <ostream>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace adlsym::json {

/// JSON string escaping (quotes, backslash, control characters).
std::string escape(std::string_view s);

class Writer {
 public:
  explicit Writer(std::ostream& os) : os_(os) {}

  Writer& beginObject();
  Writer& endObject();
  Writer& beginArray();
  Writer& endArray();

  /// Key inside an object; must be followed by exactly one value or
  /// begin{Object,Array}.
  Writer& key(std::string_view k);

  Writer& value(std::string_view v);
  Writer& value(const char* v) { return value(std::string_view(v)); }
  Writer& value(uint64_t v);
  Writer& value(int64_t v);
  Writer& value(int v) { return value(static_cast<int64_t>(v)); }
  Writer& value(unsigned v) { return value(static_cast<uint64_t>(v)); }
  Writer& value(double v);
  Writer& value(bool v);
  /// Pre-rendered JSON (e.g. a nested document from another writer).
  Writer& rawValue(std::string_view jsonText);

  // key+value in one call.
  template <typename T>
  Writer& kv(std::string_view k, T v) {
    key(k);
    return value(v);
  }

 private:
  void preValue();  // comma / separator bookkeeping

  std::ostream& os_;
  /// One frame per open container: true = object, false = array.
  std::vector<bool> stack_;
  std::vector<uint32_t> counts_;
  bool pendingKey_ = false;
};

/// Parsed JSON value — the reader counterpart of Writer. A tagged struct
/// rather than a variant so consumers stay simple; object members keep
/// their document order (the writer emits deterministic orders, and
/// bench_diff reports drift in that order).
struct Value {
  enum class Kind { Null, Bool, Number, String, Array, Object };
  Kind kind = Kind::Null;
  bool boolean = false;
  double number = 0.0;
  /// Exact integer payload, set when the number token was a pure integer
  /// (no fraction or exponent) that fits the type: `number` alone is a
  /// double and silently loses precision past 2^53, which matters for the
  /// 64-bit counters the stats and event schemas carry.
  bool intExact = false;
  uint64_t uintValue = 0;  // exact when intExact and the token was >= 0
  int64_t intValue = 0;    // exact when intExact and the token fit int64
  std::string str;
  std::vector<Value> array;
  std::vector<std::pair<std::string, Value>> object;

  bool isNull() const { return kind == Kind::Null; }
  bool isBool() const { return kind == Kind::Bool; }
  bool isNumber() const { return kind == Kind::Number; }
  bool isString() const { return kind == Kind::String; }
  bool isArray() const { return kind == Kind::Array; }
  bool isObject() const { return kind == Kind::Object; }

  /// Exact unsigned / signed reads preferring the integer payload; fall
  /// back to truncating the double for non-integer tokens.
  uint64_t asU64() const {
    return intExact ? uintValue : static_cast<uint64_t>(number);
  }
  int64_t asI64() const {
    return intExact ? intValue : static_cast<int64_t>(number);
  }

  /// First member with this key, or null when absent / not an object.
  const Value* find(std::string_view key) const;
};

/// Parse one complete JSON document (trailing whitespace allowed, trailing
/// garbage is not). Throws adlsym::InputError with a byte offset on
/// malformed input — truncated documents fail, they never parse partially.
Value parse(std::string_view text);

}  // namespace adlsym::json
