// Diagnostic engine for the ADL front end and the assembler. Collects
// errors/warnings with source locations instead of throwing, so that a whole
// file's problems can be reported in one pass.
#pragma once

#include <string>
#include <vector>

namespace adlsym {

/// A half-open position inside one source buffer. Lines and columns are
/// 1-based; (0,0) means "no location" (engine-internal diagnostics).
struct SourceLoc {
  unsigned line = 0;
  unsigned col = 0;
  bool valid() const { return line != 0; }
};

enum class Severity { Note, Warning, Error };

struct Diagnostic {
  Severity severity = Severity::Error;
  SourceLoc loc;
  std::string message;
};

/// Accumulates diagnostics for one compilation (ADL parse or assembly run).
class DiagEngine {
 public:
  explicit DiagEngine(std::string bufferName = "<input>")
      : bufferName_(std::move(bufferName)) {}

  void error(SourceLoc loc, std::string msg);
  void warning(SourceLoc loc, std::string msg);
  void note(SourceLoc loc, std::string msg);

  bool hasErrors() const { return errorCount_ > 0; }
  unsigned errorCount() const { return errorCount_; }
  const std::vector<Diagnostic>& all() const { return diags_; }
  const std::string& bufferName() const { return bufferName_; }

  /// Render every diagnostic as "name:line:col: severity: message" lines.
  std::string str() const;

 private:
  std::string bufferName_;
  std::vector<Diagnostic> diags_;
  unsigned errorCount_ = 0;
};

}  // namespace adlsym
