// Crash-safe file replacement (docs/robustness.md): checkpoints and other
// durable artifacts must never be observable half-written. writeFileAtomic
// stages the contents in a sibling temp file, fsyncs it, and renames it
// over the destination — readers see either the old bytes or the new
// bytes, even across kill -9 or power loss mid-write.
#pragma once

#include <string>
#include <string_view>

namespace adlsym::support {

/// Replace `path` with `contents` atomically: write "<path>.tmp", fsync,
/// rename over `path`. The temp file is unlinked on any failure. Throws
/// adlsym::InputError (exit code 2 at the CLI boundary) when the target
/// directory is unwritable or the filesystem rejects the write.
void writeFileAtomic(const std::string& path, std::string_view contents);

/// Read a whole file into memory. Throws adlsym::InputError when the file
/// cannot be opened or read.
std::string readFileBytes(const std::string& path);

}  // namespace adlsym::support
