// Graceful-stop plumbing (docs/robustness.md): SIGINT/SIGTERM set a
// process-wide flag; exploration loops poll it, drain, and stop with
// stop_reason=signal (exit 3) instead of dying artifact-less. Tests drive
// the same path through requestGracefulStop()/clearGracefulStop().
#pragma once

namespace adlsym::support {

/// True once a graceful stop has been requested (signal or test hook).
bool stopRequested();

/// Request a graceful stop programmatically. Async-signal-safe.
void requestGracefulStop();

/// Reset the flag (between in-process runs in tests).
void clearGracefulStop();

/// Install SIGINT/SIGTERM handlers that call requestGracefulStop().
/// Idempotent; called once from the adlsym tool entry point.
void installGracefulStopHandlers();

}  // namespace adlsym::support
