// Deterministic fault injection (docs/robustness.md). The engine declares
// named fault *sites* (solver.check, image.read, obs.write, alloc); tests
// and CI arm a schedule like "solver.check:3" and the third hit of that
// site throws. Because the trigger is a hit count, not a timer or a
// random draw, the same schedule replays the exact same failure on every
// run — the graceful-degradation paths become regression-testable.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "support/error.h"

namespace adlsym::fault {

/// Thrown by an armed fault site on its scheduled hit (except the `alloc`
/// site, which throws std::bad_alloc to exercise the real OOM path). The
/// driver maps this to exit code 4 (internal error).
class InjectedFault : public Error {
 public:
  InjectedFault(const std::string& site, uint64_t hit)
      : Error("injected fault at '" + site + "' (hit " + std::to_string(hit) +
              ")"),
        site_(site),
        hit_(hit) {}
  const std::string& site() const { return site_; }
  uint64_t hit() const { return hit_; }

 private:
  std::string site_;
  uint64_t hit_;
};

/// The registered fault sites, in catalogue order (docs/robustness.md).
const std::vector<std::string>& knownSites();

/// Arm a schedule from "<site>:<nth>[,<site>:<nth>...]": each named site
/// fires on its Nth hit (1-based), counted from this call. Replaces any
/// previous schedule. Throws InputError for an unknown site or a
/// malformed count. An empty spec is a no-op (nothing armed).
void arm(const std::string& spec);

/// Clear the schedule and all hit counters.
void disarm();

/// True when any site is armed.
bool armed();

/// Count one hit of `site`; throws on the armed Nth hit. When nothing is
/// armed this is a single branch on a global flag.
void hit(const char* site);

/// RAII arming for scoped use (CLI dispatch, tests): arms on
/// construction, disarms on destruction — including during unwinding, so
/// an injected fault never leaks its schedule into the next command.
class ScopedArm {
 public:
  explicit ScopedArm(const std::string& spec) {
    if (!spec.empty()) {
      arm(spec);
      active_ = true;
    }
  }
  ~ScopedArm() {
    if (active_) disarm();
  }
  ScopedArm(const ScopedArm&) = delete;
  ScopedArm& operator=(const ScopedArm&) = delete;

 private:
  bool active_ = false;
};

}  // namespace adlsym::fault
