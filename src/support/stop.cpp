#include "support/stop.h"

#include <atomic>
#include <csignal>

namespace adlsym::support {

namespace {

std::atomic<bool> gStop{false};
static_assert(std::atomic<bool>::is_always_lock_free,
              "signal handler requires a lock-free flag");

extern "C" void onStopSignal(int) { gStop.store(true, std::memory_order_relaxed); }

}  // namespace

bool stopRequested() { return gStop.load(std::memory_order_relaxed); }

void requestGracefulStop() { gStop.store(true, std::memory_order_relaxed); }

void clearGracefulStop() { gStop.store(false, std::memory_order_relaxed); }

void installGracefulStopHandlers() {
  struct sigaction sa = {};
  sa.sa_handler = onStopSignal;
  sigemptyset(&sa.sa_mask);
  sa.sa_flags = SA_RESTART;
  ::sigaction(SIGINT, &sa, nullptr);
  ::sigaction(SIGTERM, &sa, nullptr);
}

}  // namespace adlsym::support
