#include "support/json.h"

#include <cerrno>
#include <cmath>
#include <cstdio>
#include <cstdlib>

#include "support/error.h"

namespace adlsym::json {

std::string escape(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

void Writer::preValue() {
  if (pendingKey_) {
    pendingKey_ = false;
    return;
  }
  if (!stack_.empty()) {
    check(!stack_.back(), "json: value inside an object requires a key");
    if (counts_.back() > 0) os_ << ',';
    ++counts_.back();
  }
}

Writer& Writer::beginObject() {
  preValue();
  stack_.push_back(true);
  counts_.push_back(0);
  os_ << '{';
  return *this;
}

Writer& Writer::endObject() {
  check(!stack_.empty() && stack_.back(), "json: endObject outside object");
  stack_.pop_back();
  counts_.pop_back();
  os_ << '}';
  return *this;
}

Writer& Writer::beginArray() {
  preValue();
  stack_.push_back(false);
  counts_.push_back(0);
  os_ << '[';
  return *this;
}

Writer& Writer::endArray() {
  check(!stack_.empty() && !stack_.back(), "json: endArray outside array");
  stack_.pop_back();
  counts_.pop_back();
  os_ << ']';
  return *this;
}

Writer& Writer::key(std::string_view k) {
  check(!stack_.empty() && stack_.back(), "json: key outside object");
  check(!pendingKey_, "json: consecutive keys");
  if (counts_.back() > 0) os_ << ',';
  ++counts_.back();
  os_ << '"' << escape(k) << "\":";
  pendingKey_ = true;
  return *this;
}

Writer& Writer::value(std::string_view v) {
  preValue();
  os_ << '"' << escape(v) << '"';
  return *this;
}

Writer& Writer::value(uint64_t v) {
  preValue();
  os_ << v;
  return *this;
}

Writer& Writer::value(int64_t v) {
  preValue();
  os_ << v;
  return *this;
}

Writer& Writer::value(double v) {
  preValue();
  if (!std::isfinite(v)) {
    os_ << "null";
    return *this;
  }
  char buf[40];
  std::snprintf(buf, sizeof buf, "%.9g", v);
  os_ << buf;
  return *this;
}

Writer& Writer::value(bool v) {
  preValue();
  os_ << (v ? "true" : "false");
  return *this;
}

Writer& Writer::rawValue(std::string_view jsonText) {
  preValue();
  os_ << jsonText;
  return *this;
}

const Value* Value::find(std::string_view key) const {
  if (kind != Kind::Object) return nullptr;
  for (const auto& [k, v] : object) {
    if (k == key) return &v;
  }
  return nullptr;
}

namespace {

/// Recursive-descent parser over a string_view; `pos` is the next unread
/// byte, reported in errors so a truncated file points at its end.
class Parser {
 public:
  explicit Parser(std::string_view text) : text_(text) {}

  Value parseDocument() {
    Value v = parseValue();
    skipWs();
    if (pos_ != text_.size()) fail("trailing garbage after document");
    return v;
  }

 private:
  [[noreturn]] void fail(const std::string& what) const {
    throw InputError("json: " + what + " at byte " + std::to_string(pos_));
  }

  void skipWs() {
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if (c != ' ' && c != '\t' && c != '\n' && c != '\r') break;
      ++pos_;
    }
  }

  char peek() {
    if (pos_ >= text_.size()) fail("unexpected end of input");
    return text_[pos_];
  }

  void expect(char c) {
    if (peek() != c) fail(std::string("expected '") + c + "'");
    ++pos_;
  }

  bool consumeLit(std::string_view lit) {
    if (text_.substr(pos_, lit.size()) != lit) return false;
    pos_ += lit.size();
    return true;
  }

  Value parseValue() {
    skipWs();
    switch (peek()) {
      case '{': return parseObject();
      case '[': return parseArray();
      case '"': {
        Value v;
        v.kind = Value::Kind::String;
        v.str = parseString();
        return v;
      }
      case 't':
        if (!consumeLit("true")) fail("bad literal");
        return makeBool(true);
      case 'f':
        if (!consumeLit("false")) fail("bad literal");
        return makeBool(false);
      case 'n':
        if (!consumeLit("null")) fail("bad literal");
        return Value{};
      default: return parseNumber();
    }
  }

  static Value makeBool(bool b) {
    Value v;
    v.kind = Value::Kind::Bool;
    v.boolean = b;
    return v;
  }

  Value parseObject() {
    expect('{');
    Value v;
    v.kind = Value::Kind::Object;
    skipWs();
    if (peek() == '}') {
      ++pos_;
      return v;
    }
    while (true) {
      skipWs();
      std::string key = parseString();
      skipWs();
      expect(':');
      v.object.emplace_back(std::move(key), parseValue());
      skipWs();
      const char c = peek();
      ++pos_;
      if (c == '}') return v;
      if (c != ',') fail("expected ',' or '}' in object");
    }
  }

  Value parseArray() {
    expect('[');
    Value v;
    v.kind = Value::Kind::Array;
    skipWs();
    if (peek() == ']') {
      ++pos_;
      return v;
    }
    while (true) {
      v.array.push_back(parseValue());
      skipWs();
      const char c = peek();
      ++pos_;
      if (c == ']') return v;
      if (c != ',') fail("expected ',' or ']' in array");
    }
  }

  std::string parseString() {
    expect('"');
    std::string out;
    while (true) {
      if (pos_ >= text_.size()) fail("unterminated string");
      const char c = text_[pos_++];
      if (c == '"') return out;
      if (static_cast<unsigned char>(c) < 0x20) fail("raw control in string");
      if (c != '\\') {
        out += c;
        continue;
      }
      if (pos_ >= text_.size()) fail("unterminated escape");
      const char e = text_[pos_++];
      switch (e) {
        case '"': out += '"'; break;
        case '\\': out += '\\'; break;
        case '/': out += '/'; break;
        case 'b': out += '\b'; break;
        case 'f': out += '\f'; break;
        case 'n': out += '\n'; break;
        case 'r': out += '\r'; break;
        case 't': out += '\t'; break;
        case 'u': appendUnicode(out); break;
        default: fail("bad escape");
      }
    }
  }

  uint32_t parseHex4() {
    if (pos_ + 4 > text_.size()) fail("truncated \\u escape");
    uint32_t v = 0;
    for (int i = 0; i < 4; ++i) {
      const char c = text_[pos_++];
      v <<= 4;
      if (c >= '0' && c <= '9') v |= uint32_t(c - '0');
      else if (c >= 'a' && c <= 'f') v |= uint32_t(c - 'a' + 10);
      else if (c >= 'A' && c <= 'F') v |= uint32_t(c - 'A' + 10);
      else fail("bad \\u escape");
    }
    return v;
  }

  void appendUnicode(std::string& out) {
    uint32_t cp = parseHex4();
    if (cp >= 0xD800 && cp <= 0xDBFF && text_.substr(pos_, 2) == "\\u") {
      pos_ += 2;
      const uint32_t lo = parseHex4();
      if (lo < 0xDC00 || lo > 0xDFFF) fail("bad surrogate pair");
      cp = 0x10000 + ((cp - 0xD800) << 10) + (lo - 0xDC00);
    }
    if (cp < 0x80) {
      out += char(cp);
    } else if (cp < 0x800) {
      out += char(0xC0 | (cp >> 6));
      out += char(0x80 | (cp & 0x3F));
    } else if (cp < 0x10000) {
      out += char(0xE0 | (cp >> 12));
      out += char(0x80 | ((cp >> 6) & 0x3F));
      out += char(0x80 | (cp & 0x3F));
    } else {
      out += char(0xF0 | (cp >> 18));
      out += char(0x80 | ((cp >> 12) & 0x3F));
      out += char(0x80 | ((cp >> 6) & 0x3F));
      out += char(0x80 | (cp & 0x3F));
    }
  }

  Value parseNumber() {
    const size_t start = pos_;
    if (peek() == '-') ++pos_;
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if ((c >= '0' && c <= '9') || c == '.' || c == 'e' || c == 'E' ||
          c == '+' || c == '-') {
        ++pos_;
      } else {
        break;
      }
    }
    if (pos_ == start) fail("expected a value");
    const std::string span(text_.substr(start, pos_ - start));
    // strtod is laxer than the JSON grammar; reject the extras it would
    // accept (leading zeros, bare '-', leading '.') so a corrupted
    // document never parses by accident.
    const size_t d0 = span[0] == '-' ? 1 : 0;
    if (span.size() == d0 || span[d0] == '.' ||
        (span[d0] == '0' && span.size() > d0 + 1 && span[d0 + 1] >= '0' &&
         span[d0 + 1] <= '9')) {
      fail("bad number '" + span + "'");
    }
    char* end = nullptr;
    const double d = std::strtod(span.c_str(), &end);
    if (end == nullptr || *end != '\0') fail("bad number '" + span + "'");
    Value v;
    v.kind = Value::Kind::Number;
    v.number = d;
    // Preserve pure-integer tokens exactly (the double alone rounds past
    // 2^53 and would corrupt 64-bit counters on a read-modify-write).
    if (span.find_first_of(".eE") == std::string::npos) {
      errno = 0;
      char* iend = nullptr;
      if (span[0] == '-') {
        const long long sv = std::strtoll(span.c_str(), &iend, 10);
        if (errno == 0 && iend != nullptr && *iend == '\0') {
          v.intExact = true;
          v.intValue = sv;
          v.uintValue = static_cast<uint64_t>(sv);
        }
      } else {
        const unsigned long long uv = std::strtoull(span.c_str(), &iend, 10);
        if (errno == 0 && iend != nullptr && *iend == '\0') {
          v.intExact = true;
          v.uintValue = uv;
          v.intValue = static_cast<int64_t>(uv);
        }
      }
    }
    return v;
  }

  std::string_view text_;
  size_t pos_ = 0;
};

}  // namespace

Value parse(std::string_view text) { return Parser(text).parseDocument(); }

}  // namespace adlsym::json
