#include "support/json.h"

#include <cmath>
#include <cstdio>

#include "support/error.h"

namespace adlsym::json {

std::string escape(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

void Writer::preValue() {
  if (pendingKey_) {
    pendingKey_ = false;
    return;
  }
  if (!stack_.empty()) {
    check(!stack_.back(), "json: value inside an object requires a key");
    if (counts_.back() > 0) os_ << ',';
    ++counts_.back();
  }
}

Writer& Writer::beginObject() {
  preValue();
  stack_.push_back(true);
  counts_.push_back(0);
  os_ << '{';
  return *this;
}

Writer& Writer::endObject() {
  check(!stack_.empty() && stack_.back(), "json: endObject outside object");
  stack_.pop_back();
  counts_.pop_back();
  os_ << '}';
  return *this;
}

Writer& Writer::beginArray() {
  preValue();
  stack_.push_back(false);
  counts_.push_back(0);
  os_ << '[';
  return *this;
}

Writer& Writer::endArray() {
  check(!stack_.empty() && !stack_.back(), "json: endArray outside array");
  stack_.pop_back();
  counts_.pop_back();
  os_ << ']';
  return *this;
}

Writer& Writer::key(std::string_view k) {
  check(!stack_.empty() && stack_.back(), "json: key outside object");
  check(!pendingKey_, "json: consecutive keys");
  if (counts_.back() > 0) os_ << ',';
  ++counts_.back();
  os_ << '"' << escape(k) << "\":";
  pendingKey_ = true;
  return *this;
}

Writer& Writer::value(std::string_view v) {
  preValue();
  os_ << '"' << escape(v) << '"';
  return *this;
}

Writer& Writer::value(uint64_t v) {
  preValue();
  os_ << v;
  return *this;
}

Writer& Writer::value(int64_t v) {
  preValue();
  os_ << v;
  return *this;
}

Writer& Writer::value(double v) {
  preValue();
  if (!std::isfinite(v)) {
    os_ << "null";
    return *this;
  }
  char buf[40];
  std::snprintf(buf, sizeof buf, "%.9g", v);
  os_ << buf;
  return *this;
}

Writer& Writer::value(bool v) {
  preValue();
  os_ << (v ? "true" : "false");
  return *this;
}

Writer& Writer::rawValue(std::string_view jsonText) {
  preValue();
  os_ << jsonText;
  return *this;
}

}  // namespace adlsym::json
