// Query-corpus replay (docs/observability.md): re-solves a directory of
// captured solver queries (obs::QueryLogger output) on fresh solver
// instances and diffs the verdicts against the recorded ones. A clean
// replay proves the whole src/smt stack (parser -> builder -> bit-blaster
// -> SAT) still decides yesterday's queries the same way; any mismatch or
// unreadable entry is reported per file and turns the exit code non-zero.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "support/telemetry.h"

namespace adlsym::obs {

struct ReplayEntry {
  std::string file;          // sidecar filename, e.g. "q000003.json"
  std::string script;        // SMT-LIB filename from the sidecar
  std::string expected;      // recorded verdict ("sat"/"unsat"/"unknown")
  std::string actual;        // re-solved verdict (empty on error)
  uint64_t recordedMicros = 0;
  uint64_t replayMicros = 0;
  std::string error;         // parse/io failure; empty when solved
  bool ok() const { return error.empty() && actual == expected; }
};

struct ReplayReport {
  std::string dir;
  std::vector<ReplayEntry> entries;
  size_t matched = 0;
  size_t mismatched = 0;
  size_t errors = 0;
  uint64_t recordedMicros = 0;  // summed over replayed entries
  uint64_t replayMicros = 0;

  size_t total() const { return entries.size(); }
  /// 0 when every entry replayed to its recorded verdict; 1 on any
  /// mismatch or error, and for an empty/missing corpus.
  int exitCode() const {
    return (mismatched == 0 && errors == 0 && !entries.empty()) ? 0 : 1;
  }
  /// Human-readable report: one line per problem entry + a summary line.
  std::string formatText() const;
};

/// Replay every adlsym-query-v1 sidecar in `dir` (sorted by filename).
/// Each query is re-solved on a fresh TermManager + SmtSolver so replays
/// are independent of capture-time solver state. `tel` supplies the clock
/// for replay timing (system clock when null).
ReplayReport replayCorpus(const std::string& dir,
                          telemetry::Telemetry* tel = nullptr);

}  // namespace adlsym::obs
