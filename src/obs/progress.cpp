#include "obs/progress.h"

#include <cstdio>

#include "obs/events.h"

namespace adlsym::obs {

ProgressMeter::ProgressMeter(telemetry::Telemetry* tel, std::ostream& os,
                             double intervalSeconds, EventBus* bus,
                             uint64_t codePcs)
    : tel_(tel), os_(os), bus_(bus), codePcs_(codePcs) {
  if (intervalSeconds < 0.001) intervalSeconds = 0.001;
  intervalMicros_ = static_cast<uint64_t>(intervalSeconds * 1e6);
}

void ProgressMeter::onStepEnd(const StepInfo& info) {
  std::lock_guard<std::mutex> lk(mu_);
  telemetry::Clock& clock =
      tel_ ? tel_->clock() : telemetry::Clock::system();
  const uint64_t now = clock.nowMicros();
  if (!started_) {
    started_ = true;
    startMicros_ = now;
    lastBeatMicros_ = now;
    return;
  }
  if (now - lastBeatMicros_ < intervalMicros_) return;

  const uint64_t sinceBeat = now - lastBeatMicros_;
  const uint64_t sinceStart = now - startMicros_;
  const double stepsPerSec =
      sinceBeat ? double(info.totalSteps - lastBeatSteps_) * 1e6 /
                      double(sinceBeat)
                : 0.0;
  const double solverShare =
      sinceStart ? double(info.runSolverMicros) / double(sinceStart) : 0.0;
  // Query-cache hit rate over the whole run so far; 0 until the first
  // query. With --jobs the run* fields are worker-local, so the rate is
  // this worker's view — a live signal, not a deterministic artifact.
  const double qcacheRate =
      info.runSolverQueries
          ? double(info.runCacheHits) / double(info.runSolverQueries)
          : 0.0;

  char cov[48];
  if (codePcs_ != 0) {
    std::snprintf(cov, sizeof cov, "%zu(%.0f%%)", info.coveredPcs,
                  100.0 * double(info.coveredPcs) / double(codePcs_));
  } else {
    std::snprintf(cov, sizeof cov, "%zu", info.coveredPcs);
  }
  char line[256];
  std::snprintf(line, sizeof line,
                "[progress] t=%.1fs frontier=%zu paths=%zu steps=%llu "
                "steps/s=%.0f covered=%s solver=%.0f%% qcache=%.0f%% "
                "depth=%llu fmem=%lluKiB\n",
                double(sinceStart) / 1e6, info.frontierSize, info.pathsDone,
                static_cast<unsigned long long>(info.totalSteps), stepsPerSec,
                cov, solverShare * 100.0, qcacheRate * 100.0,
                static_cast<unsigned long long>(info.depth),
                static_cast<unsigned long long>(info.frontierBytes / 1024));
  os_ << line;
  os_.flush();

  if (tel_ && tel_->tracing()) {
    tel_->emit(telemetry::EventKind::Heartbeat,
               {{"frontier", static_cast<uint64_t>(info.frontierSize)},
                {"paths", static_cast<uint64_t>(info.pathsDone)},
                {"steps", info.totalSteps},
                {"steps_per_sec", stepsPerSec},
                {"covered_pcs", static_cast<uint64_t>(info.coveredPcs)},
                {"solver_queries", info.runSolverQueries},
                {"solver_share", solverShare},
                {"qcache_hit_rate", qcacheRate},
                {"depth", info.depth},
                {"frontier_bytes", info.frontierBytes}});
  }
  // The event stream sees the same beat the terminal does, so --events
  // and --progress never disagree about the run's live trajectory.
  if (bus_ != nullptr) {
    bus_->heartbeat(info.frontierSize, info.pathsDone, info.totalSteps,
                    stepsPerSec, info.coveredPcs, solverShare, qcacheRate,
                    info.depth, info.frontierBytes);
  }

  ++beats_;
  lastBeatMicros_ = now;
  lastBeatSteps_ = info.totalSteps;
}

}  // namespace adlsym::obs
