#include "obs/pathforest.h"

#include <cstdio>
#include <ostream>
#include <sstream>

#include "core/pexplorer.h"
#include "core/testgen.h"
#include "smt/printer.h"
#include "support/json.h"

namespace adlsym::obs {

PathNode& PathForestRecorder::at(uint64_t id) {
  if (id >= nodes_.size()) nodes_.resize(id + 1);
  PathNode& n = nodes_[id];
  n.id = id;
  return n;
}

void PathForestRecorder::onRoot(uint64_t node, const core::MachineState& st) {
  PathNode& n = at(node);
  n.forkPc = st.pc;
  n.entryPc = st.pc;
  n.verdict = "root";
}

void PathForestRecorder::onStepBegin(uint64_t /*node*/,
                                     const core::MachineState& st) {
  stepPc_ = st.pc;
  stepChildren_.clear();
}

void PathForestRecorder::onChild(uint64_t parent, uint64_t child,
                                 const core::MachineState& st,
                                 size_t condSizeBefore) {
  PathNode& n = at(child);
  n.parent = parent;
  n.forkPc = stepPc_;
  n.entryPc = st.pc;
  std::string cond;
  for (size_t i = condSizeBefore; i < st.pathCond.size(); ++i) {
    if (!cond.empty()) cond += " & ";
    cond += smt::toString(st.pathCond[i], opt_.maxCondDepth);
  }
  n.cond = std::move(cond);
  PathNode& p = at(parent);
  p.children.push_back(child);
  // A fork retires the parent id (every successor got a fresh one), so
  // the parent is an interior node from here on.
  p.status = "forked";
  stepChildren_.push_back(child);
}

void PathForestRecorder::onStepEnd(const StepInfo& info) {
  // Verdict + solver cost land on the children this step minted: queries
  // during a forking step are the feasibility checks that admitted them.
  const char* verdict = info.stepSolverQueries > 0 ? "sat" : "assumed";
  for (const uint64_t id : stepChildren_) {
    PathNode& n = at(id);
    n.verdict = verdict;
    n.solverQueries = info.stepSolverQueries;
    n.solverMicros = info.stepSolverMicros;
  }
  stepChildren_.clear();
}

void PathForestRecorder::onDrop(uint64_t node, uint64_t pc) {
  PathNode& n = at(node);
  n.status = "dropped";
  n.finalPc = pc;
}

void PathForestRecorder::onMerge(uint64_t host, uint64_t incoming,
                                 uint64_t pc) {
  PathNode& n = at(incoming);
  n.status = "merged";
  n.finalPc = pc;
  n.mergedInto = host;
}

void PathForestRecorder::onPathDone(uint64_t node,
                                    const core::PathResult& r) {
  PathNode& n = at(node);
  n.status = core::pathStatusName(r.status);
  if (r.status == core::PathStatus::Truncated) {
    n.truncReason = core::truncReasonName(r.truncReason);
  }
  n.finalPc = r.finalPc;
  n.steps = r.steps;
  n.forks = r.forks;
  n.exitCode = r.exitCode;
  if (r.defect) {
    n.defectKind = core::defectKindName(r.defect->kind);
    n.defectPc = r.defect->pc;
  }
  n.testInputs = r.test.inputs;
}

void PathForestRecorder::writeJson(std::ostream& os) const {
  json::Writer w(os);
  w.beginObject();
  w.kv("schema", "adlsym-pathforest-v1");
  w.kv("nodes", static_cast<uint64_t>(nodes_.size()));
  w.key("forest").beginArray();
  for (const PathNode& n : nodes_) {
    w.beginObject();
    w.kv("id", n.id);
    if (n.parent) w.kv("parent", *n.parent);
    w.kv("fork_pc", n.forkPc);
    w.kv("entry_pc", n.entryPc);
    if (!n.cond.empty()) w.kv("cond", std::string_view(n.cond));
    w.kv("verdict", std::string_view(n.verdict));
    w.kv("solver_queries", n.solverQueries);
    if (opt_.includeTiming) w.kv("solver_micros", n.solverMicros);
    w.kv("status", std::string_view(n.status));
    if (!n.truncReason.empty()) {
      w.kv("trunc_reason", std::string_view(n.truncReason));
    }
    w.kv("final_pc", n.finalPc);
    w.kv("steps", n.steps);
    w.kv("forks", n.forks);
    if (n.exitCode) w.kv("exit_code", *n.exitCode);
    if (!n.defectKind.empty()) {
      w.key("defect").beginObject();
      w.kv("kind", std::string_view(n.defectKind));
      w.kv("pc", n.defectPc);
      w.endObject();
    }
    if (!n.testInputs.empty()) {
      w.key("test").beginArray();
      for (const core::TestCase::Value& v : n.testInputs) {
        w.beginObject();
        w.kv("name", std::string_view(v.name));
        w.kv("width", v.width);
        w.kv("value", v.value);
        w.endObject();
      }
      w.endArray();
    }
    if (n.mergedInto) w.kv("merged_into", *n.mergedInto);
    w.key("children").beginArray();
    for (const uint64_t c : n.children) w.value(c);
    w.endArray();
    w.endObject();
  }
  w.endArray();
  w.endObject();
  os << '\n';
}

std::string PathForestRecorder::toJson() const {
  std::ostringstream os;
  writeJson(os);
  return os.str();
}

namespace {

std::string dotEscape(const std::string& s, size_t maxLen) {
  std::string out;
  for (const char c : s) {
    if (out.size() >= maxLen) {
      out += "...";
      break;
    }
    if (c == '"' || c == '\\') out += '\\';
    out += c;
  }
  return out;
}

const char* statusColor(const std::string& status) {
  if (status == "exited") return "palegreen";
  if (status == "defect" || status == "illegal") return "lightcoral";
  if (status == "dropped" || status == "infeasible") return "lightgrey";
  if (status == "merged") return "lightskyblue";
  if (status == "budget") return "khaki";
  if (status == "truncated") return "orange";
  return "white";  // open / forked (interior)
}

}  // namespace

void PathForestRecorder::writeDot(std::ostream& os) const {
  os << "digraph pathforest {\n"
     << "  node [shape=box fontname=\"monospace\" style=filled];\n";
  char buf[64];
  for (const PathNode& n : nodes_) {
    std::snprintf(buf, sizeof buf, "0x%llx",
                  static_cast<unsigned long long>(n.entryPc));
    std::string label = "n" + std::to_string(n.id) + " @" + buf;
    label += "\\n" + n.status;
    if (n.status != "open" && n.status != "merged" && n.status != "dropped") {
      label += " steps=" + std::to_string(n.steps);
    }
    if (n.exitCode) label += " exit=" + std::to_string(*n.exitCode);
    if (!n.defectKind.empty()) label += "\\n" + n.defectKind;
    os << "  n" << n.id << " [label=\"" << label << "\" fillcolor=\""
       << statusColor(n.status) << "\"];\n";
  }
  for (const PathNode& n : nodes_) {
    for (const uint64_t c : n.children) {
      os << "  n" << n.id << " -> n" << c;
      const std::string& cond = nodes_[c].cond;
      if (!cond.empty()) {
        os << " [label=\"" << dotEscape(cond, 48) << "\"]";
      }
      os << ";\n";
    }
  }
  for (const PathNode& n : nodes_) {
    if (n.mergedInto) {
      os << "  n" << n.id << " -> n" << *n.mergedInto
         << " [style=dashed label=\"merge\"];\n";
    }
  }
  os << "}\n";
}

std::string PathForestRecorder::toDot() const {
  std::ostringstream os;
  writeDot(os);
  return os.str();
}

PathForestRecorder forestFromTree(
    const std::vector<core::PathTreeNode>& tree,
    PathForestRecorder::Options opt) {
  PathForestRecorder rec(opt);
  rec.nodes_.reserve(tree.size());
  for (const core::PathTreeNode& t : tree) {
    PathNode n;
    n.id = t.id;
    n.parent = t.parent;
    n.forkPc = t.forkPc;
    n.entryPc = t.entryPc;
    n.cond = t.cond;
    n.verdict = t.verdict;
    n.solverQueries = t.solverQueries;
    n.solverMicros = t.solverMicros;
    n.status = t.status;
    n.truncReason = t.truncReason;
    n.finalPc = t.finalPc;
    n.steps = t.steps;
    n.forks = t.forks;
    n.exitCode = t.exitCode;
    n.defectKind = t.defectKind;
    n.defectPc = t.defectPc;
    n.testInputs = t.testInputs;
    n.children = t.children;
    rec.nodes_.push_back(std::move(n));
  }
  return rec;
}

}  // namespace adlsym::obs
