#include "obs/manifest.h"

#include <fstream>
#include <initializer_list>
#include <sstream>

#include "obs/events.h"
#include "support/error.h"
#include "support/hash.h"
#include "support/json.h"

namespace adlsym::obs {

namespace {

/// Stream a file through SHA-256, also reporting its size. Returns false
/// when the file cannot be opened.
bool hashFile(const std::string& path, std::string& hexOut,
              uint64_t& bytesOut) {
  std::ifstream in(path, std::ios::binary);
  if (!in.is_open()) return false;
  hash::Sha256 h;
  uint64_t total = 0;
  char buf[65536];
  while (in.read(buf, sizeof(buf)) || in.gcount() > 0) {
    h.update(buf, static_cast<size_t>(in.gcount()));
    total += static_cast<uint64_t>(in.gcount());
    if (in.eof()) break;
  }
  hexOut = h.hexDigest();
  bytesOut = total;
  return true;
}

std::string dirName(const std::string& path) {
  const size_t slash = path.find_last_of('/');
  return slash == std::string::npos ? std::string(".") : path.substr(0, slash);
}

std::string readWholeFile(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in.is_open()) {
    throw InputError("cannot open '" + path + "'");
  }
  std::ostringstream os;
  os << in.rdbuf();
  return os.str();
}

}  // namespace

void RunManifest::addArtifact(const std::string& role,
                              const std::string& path) {
  if (!path.empty()) artifacts_.push_back({role, path});
}

std::string RunManifest::toJson() const {
  std::ostringstream os;
  json::Writer w(os);
  w.beginObject();
  w.kv("schema", "adlsym-run-v1");
  w.kv("command", command);
  w.kv("isa", isa);
  w.kv("strategy", strategy);
  w.kv("program", program);
  w.key("argv");
  w.beginArray();
  for (const std::string& a : argv) w.value(a);
  w.endArray();
  w.kv("stats_schema", statsSchema);
  w.kv("events_schema", eventsSchema);
  w.key("artifacts");
  w.beginArray();
  for (const Entry& e : artifacts_) {
    std::string hex;
    uint64_t bytes = 0;
    if (!hashFile(e.path, hex, bytes)) {
      throw InputError("manifest artifact '" + e.path + "' (" + e.role +
                       ") is unreadable");
    }
    w.beginObject();
    w.kv("role", e.role);
    w.kv("path", e.path);
    w.kv("sha256", hex);
    w.kv("bytes", bytes);
    w.endObject();
  }
  w.endArray();
  w.endObject();
  os << '\n';
  return os.str();
}

void RunManifest::writeFile(const std::string& manifestPath) const {
  const std::string doc = toJson();
  std::ofstream out(manifestPath, std::ios::binary | std::ios::trunc);
  if (!out.is_open()) {
    throw InputError("cannot open '" + manifestPath + "' for writing");
  }
  out << doc;
  out.flush();
  if (!out.good()) {
    throw InputError("failed writing manifest '" + manifestPath + "'");
  }
}

namespace {

const json::Value* member(const json::Value& v,
                          std::initializer_list<const char*> path) {
  const json::Value* cur = &v;
  for (const char* key : path) {
    cur = cur->find(key);
    if (cur == nullptr) return nullptr;
  }
  return cur;
}

uint64_t u64At(const json::Value& v, std::initializer_list<const char*> path) {
  const json::Value* m = member(v, path);
  return m != nullptr && m->isNumber() ? m->asU64() : 0;
}

/// The stats document's own reconciliation identities — checked even when
/// the run produced no event stream.
void checkStatsIdentities(const json::Value& stats, VerifyReport& rep) {
  rep.checks.push_back("stats paths identity");
  const uint64_t forks = u64At(stats, {"summary", "total_forks"});
  const uint64_t paths = u64At(stats, {"summary", "paths"});
  const uint64_t dropped = u64At(stats, {"summary", "states_dropped"});
  const uint64_t merged = u64At(stats, {"summary", "states_merged"});
  if (1 + forks != paths + dropped + merged) {
    rep.problems.push_back(
        "stats paths identity violated: 1 + " + std::to_string(forks) +
        " forks != " + std::to_string(paths) + " paths + " +
        std::to_string(dropped) + " dropped + " + std::to_string(merged) +
        " merged");
  }
  if (member(stats, {"prefilter"}) != nullptr) {
    rep.checks.push_back("stats 4-bucket query accounting");
    const uint64_t queries = u64At(stats, {"solver", "queries"});
    const uint64_t cached = u64At(stats, {"solver", "cache_hits"});
    const uint64_t shortc = u64At(stats, {"prefilter", "shortcircuit"});
    const uint64_t consulted = u64At(stats, {"prefilter", "consulted"});
    const uint64_t direct = u64At(stats, {"prefilter", "direct"});
    if (cached + shortc + consulted + direct != queries) {
      rep.problems.push_back(
          "stats 4-bucket accounting violated: " + std::to_string(cached) +
          " cached + " + std::to_string(shortc) + " shortcircuit + " +
          std::to_string(consulted) + " consulted + " +
          std::to_string(direct) + " direct != " + std::to_string(queries) +
          " queries");
    }
    const json::Value* rec = member(stats, {"prefilter", "reconciled"});
    if (rec != nullptr && rec->isBool() && !rec->boolean) {
      rep.problems.push_back("stats prefilter.reconciled is false");
    }
  }
  const json::Value* prof = member(stats, {"profile", "reconciled"});
  if (prof != nullptr && prof->isBool() && !prof->boolean) {
    rep.problems.push_back("stats profile.reconciled is false");
  }
}

}  // namespace

VerifyReport verifyRun(const std::string& manifestPath) {
  json::Value doc;
  try {
    doc = json::parse(readWholeFile(manifestPath));
  } catch (const InputError& e) {
    throw InputError(std::string("manifest: ") + e.what());
  }
  if (!doc.isObject()) throw InputError("manifest is not a JSON object");
  const json::Value* schema = doc.find("schema");
  if (schema == nullptr || !schema->isString() ||
      schema->str != "adlsym-run-v1") {
    throw InputError("manifest schema is not adlsym-run-v1");
  }

  VerifyReport rep;
  const std::string base = dirName(manifestPath);
  std::string statsPath, eventsPath;

  const json::Value* arts = doc.find("artifacts");
  if (arts == nullptr || !arts->isArray()) {
    throw InputError("manifest has no artifacts array");
  }
  for (const json::Value& a : arts->array) {
    VerifyReport::ArtifactCheck c;
    const json::Value* role = a.find("role");
    const json::Value* path = a.find("path");
    const json::Value* sha = a.find("sha256");
    if (role == nullptr || !role->isString() || path == nullptr ||
        !path->isString() || sha == nullptr || !sha->isString()) {
      rep.problems.push_back("malformed artifact entry in manifest");
      continue;
    }
    c.role = role->str;
    c.path = path->str;
    c.expectedSha256 = sha->str;
    c.expectedBytes = u64At(a, {"bytes"});
    // Resolve: as recorded first, then relative to the manifest (a results
    // directory that moved wholesale still verifies).
    c.resolved = c.path;
    c.found = hashFile(c.resolved, c.actualSha256, c.actualBytes);
    if (!c.found && !c.path.empty() && c.path[0] != '/') {
      c.resolved = base + "/" + c.path;
      c.found = hashFile(c.resolved, c.actualSha256, c.actualBytes);
    }
    if (!c.found) {
      rep.problems.push_back("artifact '" + c.path + "' (" + c.role +
                             ") is missing");
    } else {
      c.hashOk = c.actualSha256 == c.expectedSha256;
      if (!c.hashOk) {
        rep.problems.push_back("artifact '" + c.path + "' (" + c.role +
                               ") hash mismatch: manifest " +
                               c.expectedSha256 + ", file " + c.actualSha256);
      } else if (c.role == "stats") {
        statsPath = c.resolved;
      } else if (c.role == "events") {
        eventsPath = c.resolved;
      }
    }
    rep.artifacts.push_back(std::move(c));
  }

  // Cross-artifact verification: only over artifacts whose hashes matched
  // (a corrupted file would fail reconciliation for the wrong reason).
  json::Value stats;
  bool haveStats = false;
  if (!statsPath.empty()) {
    try {
      stats = json::parse(readWholeFile(statsPath));
      haveStats = true;
    } catch (const Error& e) {
      rep.problems.push_back("stats artifact unparseable: " +
                             std::string(e.what()));
    }
  }
  if (haveStats) {
    const json::Value* ss = stats.find("schema");
    const json::Value* want = doc.find("stats_schema");
    if (ss != nullptr && ss->isString() && want != nullptr &&
        want->isString() && ss->str != want->str) {
      rep.problems.push_back("stats schema '" + ss->str +
                             "' does not match manifest stats_schema '" +
                             want->str + "'");
    }
    checkStatsIdentities(stats, rep);
  }
  if (!eventsPath.empty()) {
    rep.checks.push_back("events stream reconciliation");
    try {
      std::ifstream in(eventsPath, std::ios::binary);
      const EventsSummary es = summarizeEvents(in);
      for (const std::string& p : es.problems) {
        rep.problems.push_back("events: " + p);
      }
      if (haveStats) {
        rep.checks.push_back("events-vs-stats reconciliation");
        for (const std::string& p : reconcileWithStats(es, stats)) {
          rep.problems.push_back("events-vs-stats: " + p);
        }
      }
    } catch (const Error& e) {
      rep.problems.push_back("events artifact unreadable: " +
                             std::string(e.what()));
    }
  }
  return rep;
}

std::string VerifyReport::formatText() const {
  std::ostringstream os;
  for (const ArtifactCheck& c : artifacts) {
    os << (c.found && c.hashOk ? "ok   " : "FAIL ") << c.role << "  "
       << c.path;
    if (c.found && c.hashOk) {
      os << "  sha256=" << c.actualSha256.substr(0, 12) << "...  "
         << c.actualBytes << " bytes";
    } else if (!c.found) {
      os << "  (missing)";
    } else {
      os << "  (hash mismatch)";
    }
    os << '\n';
  }
  for (const std::string& c : checks) os << "check: " << c << '\n';
  if (problems.empty()) {
    os << "verify-run: OK (" << artifacts.size() << " artifact(s), "
       << checks.size() << " cross-check(s))\n";
  } else {
    os << "verify-run: " << problems.size() << " problem(s)\n";
    for (const std::string& p : problems) os << "  - " << p << '\n';
  }
  return os.str();
}

}  // namespace adlsym::obs
