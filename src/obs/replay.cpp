#include "obs/replay.h"

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <sstream>

#include "obs/smtlib.h"
#include "smt/solver.h"
#include "support/error.h"

namespace adlsym::obs {

namespace fs = std::filesystem;

namespace {

std::string readFile(const fs::path& p) {
  std::ifstream is(p, std::ios::binary);
  if (!is) throw Error("replay: cannot read '" + p.string() + "'");
  std::ostringstream os;
  os << is.rdbuf();
  return os.str();
}

// The sidecars are our own compact json::Writer output, so targeted
// field extraction is enough — no general JSON reader in the repo.
std::string jsonStringField(const std::string& doc, const std::string& key) {
  const std::string needle = "\"" + key + "\":\"";
  const size_t at = doc.find(needle);
  if (at == std::string::npos)
    throw Error("replay: sidecar missing field '" + key + "'");
  const size_t start = at + needle.size();
  const size_t end = doc.find('"', start);
  if (end == std::string::npos)
    throw Error("replay: sidecar field '" + key + "' unterminated");
  return doc.substr(start, end - start);
}

uint64_t jsonUintField(const std::string& doc, const std::string& key) {
  const std::string needle = "\"" + key + "\":";
  const size_t at = doc.find(needle);
  if (at == std::string::npos)
    throw Error("replay: sidecar missing field '" + key + "'");
  size_t i = at + needle.size();
  uint64_t v = 0;
  bool any = false;
  while (i < doc.size() && doc[i] >= '0' && doc[i] <= '9') {
    v = v * 10 + static_cast<uint64_t>(doc[i] - '0');
    ++i;
    any = true;
  }
  if (!any)
    throw Error("replay: sidecar field '" + key + "' is not a number");
  return v;
}

}  // namespace

ReplayReport replayCorpus(const std::string& dir, telemetry::Telemetry* tel) {
  ReplayReport report;
  report.dir = dir;

  // A corpus directory that does not exist (or is unreadable) is bad
  // input, not an empty corpus: surface it as a diagnostic + exit 2
  // instead of the misleading "no sidecars" report.
  std::error_code ec;
  if (!fs::is_directory(dir, ec) || ec) {
    throw InputError("replay: '" + dir + "' is not a readable directory");
  }
  std::vector<std::string> sidecars;
  for (const auto& e : fs::directory_iterator(dir, ec)) {
    if (e.path().extension() == ".json")
      sidecars.push_back(e.path().filename().string());
  }
  // Sequence numbers are zero-padded, so filename order is capture order.
  std::sort(sidecars.begin(), sidecars.end());

  telemetry::Clock& clock = tel ? tel->clock() : telemetry::Clock::system();

  for (const std::string& name : sidecars) {
    ReplayEntry entry;
    entry.file = name;
    try {
      const std::string meta = readFile(fs::path(dir) / name);
      const std::string schema = jsonStringField(meta, "schema");
      if (schema != "adlsym-query-v1")
        throw Error("replay: unsupported sidecar schema '" + schema + "'");
      entry.script = jsonStringField(meta, "file");
      entry.expected = jsonStringField(meta, "verdict");
      entry.recordedMicros = jsonUintField(meta, "micros");

      const std::string text = readFile(fs::path(dir) / entry.script);
      // Fresh stack per entry: replays must not inherit capture-time
      // incremental state (learned clauses, query cache, blasted vars).
      smt::TermManager tm;
      const SmtScript script = parseSmtLib(tm, text);
      smt::SmtSolver solver(tm);
      const uint64_t t0 = clock.nowMicros();
      const smt::CheckResult r = solver.check(script.asserts);
      entry.replayMicros = clock.nowMicros() - t0;
      entry.actual = smt::checkResultName(r);

      report.recordedMicros += entry.recordedMicros;
      report.replayMicros += entry.replayMicros;
      if (entry.actual == entry.expected) {
        ++report.matched;
      } else {
        ++report.mismatched;
      }
    } catch (const std::exception& ex) {
      entry.error = ex.what();
      ++report.errors;
    }
    report.entries.push_back(std::move(entry));
  }
  return report;
}

std::string ReplayReport::formatText() const {
  std::ostringstream os;
  for (const ReplayEntry& e : entries) {
    if (!e.error.empty()) {
      os << "ERROR    " << e.file << ": " << e.error << '\n';
    } else if (e.actual != e.expected) {
      os << "MISMATCH " << e.script << ": recorded " << e.expected
         << ", replayed " << e.actual << '\n';
    }
  }
  if (entries.empty()) {
    os << "replay: no adlsym-query-v1 sidecars in '" << dir << "'\n";
    return os.str();
  }
  os << "replay: " << total() << " queries, " << matched << " matched, "
     << mismatched << " mismatched, " << errors << " errors\n";
  os << "replay: recorded " << recordedMicros << " us, replayed "
     << replayMicros << " us\n";
  return os.str();
}

}  // namespace adlsym::obs
