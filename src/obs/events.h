// Flight recorder (docs/observability.md): the adlsym-events-v1 JSONL
// event stream. EventBus unifies the ExploreObserver and QueryListener
// hook surfaces into one versioned, seekable stream of events with
// monotone sequence numbers and periodic self-describing Snapshot events,
// so a reader can join mid-run (`adlsym tail`) or reconstruct the run's
// counters after the fact (`adlsym events summarize`).
//
// Determinism contract: the *set* of deterministic events (run_begin,
// step, offstep, merge, path_done, run_end) is identical across
// --jobs=1/2/8 under --clock=manual — every record is attributed to a
// structural path key (docs/parallelism.md), and only schedule-independent
// fields (canonical solver cost, per-step query counts, prefilter
// outcomes) are emitted on them. Live signals (snapshot, heartbeat, query)
// carry schedule-dependent data and are quarantined to their own event
// types; canonicalizeEvents() drops them plus the seq/t fields and sorts
// what remains into a canonical order, which CI byte-compares across jobs
// counts.
#pragma once

#include <charconv>
#include <cstdint>
#include <cstring>
#include <iosfwd>
#include <map>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

#include "core/explorer.h"
#include "core/observer.h"
#include "smt/solver.h"
#include "support/json.h"
#include "support/telemetry.h"

namespace adlsym::obs {

struct EventBusOptions {
  /// Emit one snapshot event after every N step events (0 = never). The
  /// snapshot *count* is therefore deterministic across --jobs even
  /// though snapshot *content* is live.
  uint64_t snapshotEverySteps = 1000;
  /// Governor budgets echoed into snapshots (0 = unbounded).
  uint64_t maxFrontier = 0;
  uint64_t memBudgetBytes = 0;
  /// Decodable instructions in the image's code sections — the coverage-%
  /// denominator for snapshots and heartbeats (0 = unknown).
  uint64_t codePcs = 0;
};

/// The flight recorder. Attach to the explorer as an observer (through
/// the run's ObserverMux) and to the solver(s) via addQueryListener; call
/// runBegin() before exploration and runEnd() after. Thread-safe: worker
/// threads report steps and queries concurrently. Timestamps come from
/// the telemetry clock when attached — work-indexed (and deterministic in
/// sequence, though not across schedules) under --clock=manual.
class EventBus final : public core::ExploreObserver, public smt::QueryListener {
 public:
  /// `os` is borrowed and must outlive the bus; `tel` may be null
  /// (system-clock timestamps).
  EventBus(std::ostream& os, telemetry::Telemetry* tel,
           EventBusOptions opts = {});

  bool wantsPathKeys() const override { return true; }

  struct RunMeta {
    std::string command;   // "explore" | "profile"
    std::string isa;
    std::string strategy;
    std::string program;   // image label (cosmetic)
  };

  /// Emit the run_begin event (schema tag + invocation metadata).
  void runBegin(const RunMeta& meta);

  /// Emit the run_end event with the run's deterministic totals.
  /// `engineRtlTicks` is the evaluator's independently-flushed statement
  /// tick total (core/rtlprofile); pass 0 when not profiled — the field
  /// is omitted so summarize never checks ticks against a stale zero.
  void runEnd(const core::ExploreSummary& summary,
              const smt::SolverTelemetry& solver, uint64_t engineRtlTicks);

  // ---- ExploreObserver (deterministic events) -------------------------
  void onStepEnd(const StepInfo& info) override;
  void onOffStepSolve(uint64_t pc, uint64_t queries, uint64_t canonTerms,
                      uint64_t canonGates, uint64_t canonConflicts,
                      uint64_t preHits, uint64_t preMisses) override;
  void onMerge(uint64_t host, uint64_t incoming, uint64_t pc) override;
  void onPathDone(uint64_t node, const core::PathResult& result) override;

  // ---- QueryListener (live event) -------------------------------------
  void onCheck(const std::vector<smt::TermRef>& permanent,
               const std::vector<smt::TermRef>& assumptions,
               smt::CheckResult result, uint64_t micros, bool cached) override;

  // ---- live heartbeat (called by ProgressMeter) -----------------------
  void heartbeat(size_t frontier, size_t pathsDone, uint64_t steps,
                 double stepsPerSec, size_t coveredPcs, double solverShare,
                 double qcacheRate, uint64_t depth, uint64_t frontierBytes);

  struct Counts {
    uint64_t runBegin = 0;
    uint64_t step = 0;
    uint64_t snapshot = 0;
    uint64_t offstep = 0;
    uint64_t merge = 0;
    uint64_t pathDone = 0;
    uint64_t query = 0;
    uint64_t heartbeat = 0;
    uint64_t runEnd = 0;
    /// Events lost to a failed stream write (disk full, closed pipe).
    uint64_t dropped = 0;
  };
  Counts counts() const;

  /// The "events" object of the stats schema (v7): per-type emitted
  /// counts, drops and the snapshot cadence.
  void writeStatsJson(json::Writer& w) const;

  void flush();

  // ---- checkpoint support (adlsym-ckpt-v1, docs/robustness.md) ---------

  /// Canonical replacement values for the live snapshot gauges, computed
  /// by the quiesced engine at a checkpoint barrier. The bus's own
  /// rollups are last-writer racy across worker schedules, so checkpoints
  /// store these instead — keeping checkpoint bytes identical across -jN.
  struct CkptGauges {
    uint64_t steps = 0;
    uint64_t frontier = 0;
    uint64_t frontierBytes = 0;
    uint64_t pathsDone = 0;
    uint64_t covered = 0;
    uint64_t queries = 0;
    uint64_t cacheHits = 0;
    uint64_t solverMicros = 0;
  };

  /// Append the bus's deterministic watermark state (seq / per-type
  /// counts / snapshot cadence counter / first-event time) plus the
  /// canonical gauges as one JSON object. The caller wraps it with the
  /// stream byte offset and canonical-prefix hash. The inter-snapshot
  /// depth histogram is deliberately *not* stored (schedule-dependent,
  /// snapshot-only): a resumed run's first snapshot starts it empty.
  void writeCkptJson(json::Writer& w, const CkptGauges& gauges) const;

  /// Resume-mode begin: adopt run metadata and restore the counters from
  /// a checkpoint's "events" section instead of emitting a fresh
  /// run_begin — the spliced stream prefix already carries one.
  void resumeRun(const RunMeta& meta, const json::Value& v);

 private:
  // Hand-rolled line formatting: emission is on the interpreter hot path
  // (one step event per executed instruction), so events are rendered
  // into a reused std::string with std::to_chars — no ostringstream, no
  // per-event allocation once the buffer has grown. The hot helpers are
  // templates over the key literal so every field becomes a handful of
  // fixed-size memcpys into a stack buffer plus one string append. All
  // helpers require the caller to hold mu_.
  /// Open one event line ({"v":1,"seq":N,"t":T,"type":...) into line_.
  template <size_t N>
  void lineBegin(const char (&type)[N]) {
    line_.clear();
    const uint64_t t = tel_ != nullptr ? tel_->nowMicros()
                                       : telemetry::Clock::system().nowMicros();
    if (!started_) {
      started_ = true;
      startMicros_ = t;
    }
    char buf[N + 64];
    char* p = buf;
    std::memcpy(p, "{\"v\":1,\"seq\":", 13);
    p += 13;
    p = std::to_chars(p, p + 20, seq_++).ptr;
    std::memcpy(p, ",\"t\":", 5);
    p += 5;
    p = std::to_chars(p, p + 20, t).ptr;
    std::memcpy(p, ",\"type\":\"", 9);
    p += 9;
    std::memcpy(p, type, N - 1);
    p += N - 1;
    *p++ = '"';
    line_.append(buf, static_cast<size_t>(p - buf));
  }
  template <size_t N>
  void kvU(const char (&key)[N], uint64_t v) {  // ,"key":123
    char buf[N + 24];
    char* p = buf;
    *p++ = ',';
    *p++ = '"';
    std::memcpy(p, key, N - 1);
    p += N - 1;
    *p++ = '"';
    *p++ = ':';
    p = std::to_chars(p, p + 20, v).ptr;
    line_.append(buf, static_cast<size_t>(p - buf));
  }
  template <size_t N>
  void kvS(const char (&key)[N], std::string_view v) {  // ,"key":"escaped"
    char buf[N + 4];
    char* p = buf;
    *p++ = ',';
    *p++ = '"';
    std::memcpy(p, key, N - 1);
    p += N - 1;
    *p++ = '"';
    *p++ = ':';
    *p++ = '"';
    line_.append(buf, static_cast<size_t>(p - buf));
    appendJsonString(v);
    line_ += '"';
  }
  /// Append v to line_, escaping only when it contains bytes that need it.
  void appendJsonString(std::string_view v);
  void kvD(const char* key, double v);  // ,"key":1.5 (%.9g)
  void kvB(const char* key, bool v);    // ,"key":true
  /// Close the line and write it to the stream, tracking drops.
  void commit(uint64_t& counter, bool flushNow = false);
  void emitSnapshot();  // caller holds mu_

  std::ostream& os_;
  telemetry::Telemetry* tel_;
  EventBusOptions opts_;

  mutable std::mutex mu_;
  std::string line_;
  uint64_t seq_ = 0;
  Counts counts_;
  RunMeta meta_;
  /// Step events *seen* (independent of write failures) — the snapshot
  /// cadence counter, so the snapshot count stays deterministic even when
  /// the stream drops writes.
  uint64_t stepEvents_ = 0;

  // Live rollups feeding snapshots (updated on step events).
  uint64_t liveSteps_ = 0;
  uint64_t liveFrontier_ = 0;
  uint64_t liveFrontierBytes_ = 0;
  uint64_t livePathsDone_ = 0;
  uint64_t liveCovered_ = 0;
  uint64_t liveQueries_ = 0;
  uint64_t liveCacheHits_ = 0;
  uint64_t liveSolverMicros_ = 0;
  uint64_t livePreHits_ = 0;
  uint64_t livePreMisses_ = 0;
  uint64_t startMicros_ = 0;
  bool started_ = false;
  /// Depth histogram of steps since the last snapshot: bucket 0 = depth 0,
  /// bucket k = depth in [2^(k-1), 2^k) for k in 1..6, bucket 7 = 64+.
  uint64_t depthHist_[8] = {};
};

// ---- stream tools -----------------------------------------------------

/// Canonicalize an adlsym-events-v1 stream: drop the live event types
/// (snapshot, heartbeat, query) and the schedule-dependent seq/t fields,
/// then sort the remaining events into canonical order — type rank, then
/// numeric structural path key, then per-path step index. The output is
/// byte-identical across --jobs for the same run configuration. Returns
/// the number of canonical events written. Throws adlsym::InputError on a
/// malformed stream.
size_t canonicalizeEvents(std::istream& in, std::ostream& out);

/// Counters recomputed from an event stream plus the run_end echo,
/// cross-checked against the reconciliation identities (paths identity,
/// query attribution, 4-bucket accounting, tick totals).
struct EventsSummary {
  // Recomputed from the deterministic events.
  uint64_t steps = 0;       // step events
  uint64_t forks = 0;       // sum of (succ - 1) over forking steps
  uint64_t dropped = 0;     // step events with 0 successors
  uint64_t merges = 0;      // merge events
  uint64_t pathsDone = 0;   // path_done events
  uint64_t truncated = 0;   // path_done with status "truncated"
  uint64_t defects = 0;     // path_done with a defect
  uint64_t exited = 0;      // path_done with status "exited"
  uint64_t stepQueries = 0;
  uint64_t offstepQueries = 0;
  uint64_t rtlTicks = 0;
  uint64_t canonTerms = 0;
  uint64_t canonGates = 0;
  uint64_t canonConflicts = 0;
  uint64_t preHits = 0;
  uint64_t preMisses = 0;
  std::map<std::string, uint64_t> pathStatuses;
  // Raw per-type event counts (for the stats "events.emitted" cross-check).
  uint64_t offstepEvents = 0;
  uint64_t queryEvents = 0;
  uint64_t snapshotEvents = 0;
  uint64_t heartbeatEvents = 0;

  // Echo of the run_begin / run_end records.
  bool sawRunBegin = false;
  bool sawRunEnd = false;
  std::string command;
  std::string isa;
  std::string strategy;
  std::string stopReason;
  uint64_t endSteps = 0;
  uint64_t endForks = 0;
  uint64_t endDropped = 0;
  uint64_t endMerged = 0;
  uint64_t endPaths = 0;
  uint64_t endTruncated = 0;
  uint64_t endCoveredPcs = 0;
  uint64_t endQueries = 0;
  uint64_t endCacheHits = 0;
  uint64_t endPreShortcircuit = 0;
  uint64_t endPreConsulted = 0;
  uint64_t endDirectSolves = 0;
  uint64_t endCanonTerms = 0;
  uint64_t endCanonGates = 0;
  uint64_t endCanonConflicts = 0;
  bool endHasRtlTicks = false;
  uint64_t endRtlTicks = 0;

  /// Failed identities / malformed records, human-readable.
  std::vector<std::string> problems;
  bool ok() const { return problems.empty(); }
  std::string formatText() const;
};

/// Replay a stream and check every reconciliation identity. Throws
/// adlsym::InputError on unreadable/malformed JSONL.
EventsSummary summarizeEvents(std::istream& in);

/// Cross-check a summarized stream against a parsed adlsym-stats-v8
/// document (the run's --stats-json). Returns mismatch descriptions
/// (empty = the stream reconciles exactly with the stats counters).
std::vector<std::string> reconcileWithStats(const EventsSummary& es,
                                            const json::Value& stats);

// ---- live inspector (`adlsym tail`) -----------------------------------

/// Incremental reader state for the terminal inspector: apply() events in
/// stream order, render() the dashboard at any point. Pure state machine
/// (no I/O) so tests can drive it without a terminal.
class TailState {
 public:
  /// Apply one parsed event line. Unknown event types are counted but
  /// otherwise ignored (forward compatibility).
  void apply(const json::Value& ev);
  /// True once run_end was applied.
  bool done() const { return done_; }
  uint64_t eventsSeen() const { return events_; }
  /// Multi-line dashboard: run metadata, latest snapshot gauges, event
  /// counts and rates.
  std::string render() const;

 private:
  bool done_ = false;
  uint64_t events_ = 0;
  uint64_t lastSeq_ = 0;
  uint64_t lastMicros_ = 0;
  std::string command_, isa_, strategy_, program_, stopReason_;
  std::map<std::string, uint64_t> typeCounts_;
  // Latest gauges (snapshot > heartbeat > step, whichever came last).
  uint64_t frontier_ = 0, frontierBytes_ = 0, pathsDone_ = 0, steps_ = 0,
           covered_ = 0, codePcs_ = 0, depth_ = 0;
  double qcacheRate_ = 0.0, stepsPerSec_ = 0.0;
  std::vector<uint64_t> depthHist_;
  // Terminal totals from run_end.
  uint64_t endPaths_ = 0, endDefects_ = 0, endQueries_ = 0;
};

}  // namespace adlsym::obs
