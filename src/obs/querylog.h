// Solver query capture (docs/observability.md): dumps every
// SmtSolver::check of a run into a corpus directory — one SMT-LIB 2
// script (qNNNNNN.smt2, produced by smt::toSmtLib, replayable by any
// SMT-LIB solver) plus one adlsym-query-v1 metadata sidecar
// (qNNNNNN.json: sequence, origin pc/node, verdict, latency). The
// companion `adlsym replay <dir>` command (obs/replay.h) re-solves a
// captured corpus and diffs verdicts, making any corpus a standing
// regression suite for the whole src/smt stack.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "core/observer.h"
#include "smt/solver.h"

namespace adlsym::obs {

class QueryLogger final : public smt::QueryListener,
                          public core::ExploreObserver {
 public:
  /// Creates `dir` (and parents) if needed. Throws adlsym::Error when the
  /// directory cannot be created or a corpus file cannot be written.
  explicit QueryLogger(std::string dir);

  // smt::QueryListener — writes one script + sidecar pair per check.
  void onCheck(const std::vector<smt::TermRef>& permanent,
               const std::vector<smt::TermRef>& assumptions,
               smt::CheckResult result, uint64_t micros,
               bool cached) override;

  // core::ExploreObserver — tracks the origin of subsequent queries.
  void onStepBegin(uint64_t node, const core::MachineState& st) override;

  uint64_t queriesLogged() const { return seq_; }
  const std::string& dir() const { return dir_; }

 private:
  std::string dir_;
  uint64_t seq_ = 0;
  uint64_t originPc_ = 0;
  uint64_t originNode_ = 0;
};

}  // namespace adlsym::obs
