#include "obs/sitestats.h"

#include "support/json.h"

namespace adlsym::obs {

void SiteStatsCollector::onStepEnd(const StepInfo& info) {
  std::lock_guard<std::mutex> lk(mu_);
  const decode::DecodedInsn* d = decoder_.decodeAt(image_, info.pc);
  ++opcodes_[d != nullptr ? d->insn->name : "<illegal>"];
  Site& site = sites_[info.pc];
  ++site.hits;
  if (info.numSuccessors > 1) ++site.forks;
  // Drops are counted in onDrop (numSuccessors == 0 also covers normal
  // path termination, which is not an infeasibility event).
}

void SiteStatsCollector::onDrop(uint64_t /*node*/, uint64_t pc) {
  std::lock_guard<std::mutex> lk(mu_);
  ++sites_[pc].infeasible;
}

void SiteStatsCollector::writeJson(json::Writer& w) const {
  w.key("opcodes").beginObject();
  for (const auto& [name, count] : opcodes_) w.kv(name, count);
  w.endObject();
  w.key("branch_sites").beginArray();
  for (const auto& [pc, site] : sites_) {
    if (site.forks == 0 && site.infeasible == 0) continue;
    w.beginObject();
    w.kv("pc", pc);
    w.kv("hits", site.hits);
    w.kv("forks", site.forks);
    w.kv("infeasible", site.infeasible);
    w.endObject();
  }
  w.endArray();
}

}  // namespace adlsym::obs
