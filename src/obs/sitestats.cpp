#include "obs/sitestats.h"

#include "support/error.h"
#include "support/json.h"

namespace adlsym::obs {

void SiteStatsCollector::onStepEnd(const StepInfo& info) {
  std::lock_guard<std::mutex> lk(mu_);
  const decode::DecodedInsn* d = decoder_.decodeAt(image_, info.pc);
  ++opcodes_[d != nullptr ? d->insn->name : "<illegal>"];
  Site& site = sites_[info.pc];
  ++site.hits;
  if (info.numSuccessors > 1) ++site.forks;
  // Drops are counted in onDrop (numSuccessors == 0 also covers normal
  // path termination, which is not an infeasibility event).
}

void SiteStatsCollector::onDrop(uint64_t /*node*/, uint64_t pc) {
  std::lock_guard<std::mutex> lk(mu_);
  ++sites_[pc].infeasible;
}

void SiteStatsCollector::writeJson(json::Writer& w) const {
  w.key("opcodes").beginObject();
  for (const auto& [name, count] : opcodes_) w.kv(name, count);
  w.endObject();
  w.key("branch_sites").beginArray();
  for (const auto& [pc, site] : sites_) {
    if (site.forks == 0 && site.infeasible == 0) continue;
    w.beginObject();
    w.kv("pc", pc);
    w.kv("hits", site.hits);
    w.kv("forks", site.forks);
    w.kv("infeasible", site.infeasible);
    w.endObject();
  }
  w.endArray();
}

void SiteStatsCollector::writeCkptJson(json::Writer& w) const {
  std::lock_guard<std::mutex> lk(mu_);
  w.beginObject();
  w.key("opcodes").beginObject();
  for (const auto& [name, count] : opcodes_) w.kv(name, count);
  w.endObject();
  w.key("sites").beginArray();
  for (const auto& [pc, site] : sites_) {
    w.beginArray();
    w.value(pc).value(site.hits).value(site.forks).value(site.infeasible);
    w.endArray();
  }
  w.endArray();
  w.endObject();
}

void SiteStatsCollector::restoreFromCkpt(const json::Value& v) {
  const json::Value* opcodes = v.find("opcodes");
  const json::Value* sites = v.find("sites");
  if (opcodes == nullptr || !opcodes->isObject() || sites == nullptr ||
      !sites->isArray()) {
    throw InputError("sites section: missing 'opcodes'/'sites'");
  }
  std::lock_guard<std::mutex> lk(mu_);
  for (const auto& [name, count] : opcodes->object) {
    opcodes_[name] += count.asU64();
  }
  for (const json::Value& row : sites->array) {
    if (!row.isArray() || row.array.size() != 4) {
      throw InputError("sites section: malformed site row");
    }
    Site& site = sites_[row.array[0].asU64()];
    site.hits += row.array[1].asU64();
    site.forks += row.array[2].asU64();
    site.infeasible += row.array[3].asU64();
  }
}

}  // namespace adlsym::obs
