#include "obs/profile.h"

#include <algorithm>
#include <cstdio>
#include <sstream>
#include <utility>
#include <vector>

#include "support/json.h"

namespace adlsym::obs {

void ProfileCollector::onStepEnd(const StepInfo& info) {
  std::lock_guard<std::mutex> lk(mu_);
  SiteCost& site = sites_[info.pc];
  if (site.opcode.empty()) {
    const decode::DecodedInsn* d = decoder_.decodeAt(image_, info.pc);
    site.opcode = d != nullptr ? d->insn->name : "<illegal>";
  }
  ++site.steps;
  site.rtlTicks += info.stepRtlTicks;
  if (info.numSuccessors > 1) ++site.forks;
  site.queries += info.stepSolverQueries;
  site.canon.terms += info.stepCanonTerms;
  site.canon.gates += info.stepCanonGates;
  site.canon.conflicts += info.stepCanonConflicts;
  site.prefilterHits += info.stepPrefilterHits;
  site.prefilterMisses += info.stepPrefilterMisses;
  ++totalSteps_;
  totalTicks_ += info.stepRtlTicks;
  totalQueries_ += info.stepSolverQueries;
}

void ProfileCollector::onOffStepSolve(uint64_t pc, uint64_t queries,
                                      uint64_t canonTerms, uint64_t canonGates,
                                      uint64_t canonConflicts,
                                      uint64_t preHits, uint64_t preMisses) {
  std::lock_guard<std::mutex> lk(mu_);
  SiteCost& site = sites_[pc];
  if (site.opcode.empty()) {
    // The cut pc never executed (the budget closed the path before its
    // step), so the decoder may not have seen it yet.
    const decode::DecodedInsn* d = decoder_.decodeAt(image_, pc);
    site.opcode = d != nullptr ? d->insn->name : "<illegal>";
  }
  site.offStepQueries += queries;
  site.canon.terms += canonTerms;
  site.canon.gates += canonGates;
  site.canon.conflicts += canonConflicts;
  site.prefilterHits += preHits;
  site.prefilterMisses += preMisses;
  totalQueries_ += queries;
  totalOffStep_ += queries;
}

namespace {

void writeCanon(json::Writer& w, const smt::QueryCost& c) {
  w.key("canon").beginObject();
  w.kv("terms", c.terms);
  w.kv("gates", c.gates);
  w.kv("conflicts", c.conflicts);
  w.endObject();
}

/// Per-mnemonic rollup of the per-pc sites; std::map keeps emission
/// canonical.
struct OpRow {
  uint64_t steps = 0;
  uint64_t rtlTicks = 0;
  uint64_t forks = 0;
  uint64_t queries = 0;  // in-step + off-step
  smt::QueryCost canon;
};

std::map<std::string, OpRow> rollupOpcodes(const ProfileCollector& prof) {
  std::map<std::string, OpRow> ops;
  for (const auto& [pc, s] : prof.sites()) {
    OpRow& row = ops[s.opcode];
    row.steps += s.steps;
    row.rtlTicks += s.rtlTicks;
    row.forks += s.forks;
    row.queries += s.queries + s.offStepQueries;
    row.canon += s.canon;
  }
  return ops;
}

std::string hexPc(uint64_t pc) {
  char buf[32];
  std::snprintf(buf, sizeof buf, "0x%llx",
                static_cast<unsigned long long>(pc));
  return buf;
}

}  // namespace

ProfileReport::Reconcile ProfileReport::reconcile() const {
  Reconcile r;
  r.siteRtlTicks = prof != nullptr ? prof->totalRtlTicks() : 0;
  r.engineRtlTicks = engineRtlTicks;
  r.siteQueries = prof != nullptr ? prof->totalQueries() : 0;
  r.solverQueries = solver.queries;
  return r;
}

void ProfileReport::writeJson(std::ostream& os) const {
  json::Writer w(os);
  w.beginObject();
  w.kv("schema", "adlsym-profile-v2");
  w.kv("isa", isa);
  w.kv("program", program);

  w.key("engine").beginObject();
  w.kv("steps", engineSteps);
  w.kv("rtl_ticks", engineRtlTicks);
  w.endObject();

  w.key("sites").beginArray();
  if (prof != nullptr) {
    for (const auto& [pc, s] : prof->sites()) {
      w.beginObject();
      w.kv("pc", pc);
      w.kv("opcode", s.opcode);
      w.kv("steps", s.steps);
      w.kv("rtl_ticks", s.rtlTicks);
      w.kv("forks", s.forks);
      w.kv("queries", s.queries);
      w.kv("off_step_queries", s.offStepQueries);
      w.kv("prefilter_hits", s.prefilterHits);
      w.kv("prefilter_misses", s.prefilterMisses);
      writeCanon(w, s.canon);
      w.endObject();
    }
  }
  w.endArray();

  w.key("opcodes").beginArray();
  if (prof != nullptr) {
    for (const auto& [name, row] : rollupOpcodes(*prof)) {
      w.beginObject();
      w.kv("opcode", name);
      w.kv("steps", row.steps);
      w.kv("rtl_ticks", row.rtlTicks);
      w.kv("forks", row.forks);
      w.kv("queries", row.queries);
      writeCanon(w, row.canon);
      w.endObject();
    }
  }
  w.endArray();

  if (rtl != nullptr) {
    w.key("rtl").beginArray();
    const auto& counts = rtl->counts();
    const auto& sites = rtl->sites();
    for (size_t i = 0; i < sites.size(); ++i) {
      if (counts[i] == 0) continue;
      w.beginObject();
      w.kv("insn", sites[i].insn);
      w.kv("stmt", sites[i].stmtIdx);
      w.kv("op", core::stmtOpName(sites[i].op));
      w.kv("line", sites[i].line);
      w.kv("col", sites[i].col);
      w.kv("count", counts[i]);
      w.endObject();
    }
    w.endArray();
  }

  // Canonical solver fields only — wall micros are schedule-dependent
  // (cache hits are cheaper than the miss that filled them), so they are
  // excluded to keep the document byte-identical across --jobs.
  w.key("solver").beginObject();
  w.kv("queries", solver.queries);
  w.kv("sat", solver.sat);
  w.kv("unsat", solver.unsat);
  w.kv("unknown", solver.unknown);
  w.kv("cache_hits", solver.cacheHits);
  writeCanon(w, solver.canon);
  w.key("prefilter");
  solver.writePrefilterJson(w);
  if (shapes != nullptr) {
    w.key("shapes").beginArray();
    for (const auto& [bucket, row] : *shapes) {
      w.beginObject();
      w.kv("terms_bits", bucket);  // bit_width(canonical terms blasted)
      w.kv("queries", row.queries);
      w.kv("hits", row.hits);
      w.kv("sat", row.sat);
      w.kv("unsat", row.unsat);
      w.kv("unknown", row.unknown);
      writeCanon(w, row.cost);
      w.endObject();
    }
    w.endArray();
  }
  w.endObject();

  if (hasQcache) {
    w.key("qcache");
    qcache.writeJson(w);
  }

  const Reconcile r = reconcile();
  w.key("reconcile").beginObject();
  w.kv("site_rtl_ticks", r.siteRtlTicks);
  w.kv("engine_rtl_ticks", r.engineRtlTicks);
  w.kv("rtl_ticks_ok", r.ticksOk());
  w.kv("site_queries", r.siteQueries);
  w.kv("solver_queries", r.solverQueries);
  w.kv("queries_ok", r.queriesOk());
  w.endObject();

  w.endObject();
  os << '\n';
}

void ProfileReport::writeFolded(std::ostream& os) const {
  if (prof == nullptr) return;
  // One line per leaf frame: "root;frame;frame value". Roots carry the
  // sample unit so mixed stacks stay interpretable in flamegraph tools.
  for (const auto& [pc, s] : prof->sites()) {
    if (s.rtlTicks != 0) {
      os << "exec_ticks;" << isa << ";" << s.opcode << ";pc=" << hexPc(pc)
         << " " << s.rtlTicks << "\n";
    }
  }
  if (rtl != nullptr) {
    const auto& counts = rtl->counts();
    const auto& sites = rtl->sites();
    for (size_t i = 0; i < sites.size(); ++i) {
      if (counts[i] == 0) continue;
      os << "rtl_ticks;" << isa << ";" << sites[i].insn << ";s"
         << sites[i].stmtIdx << ":" << core::stmtOpName(sites[i].op) << " "
         << counts[i] << "\n";
    }
  }
  for (const auto& [pc, s] : prof->sites()) {
    if (s.canon.gates != 0) {
      os << "solver_gates;" << isa << ";" << s.opcode << ";pc=" << hexPc(pc)
         << " " << s.canon.gates << "\n";
    }
  }
}

void ProfileReport::writeSummary(json::Writer& w) const {
  const Reconcile r = reconcile();
  w.key("profile").beginObject();
  w.kv("schema", "adlsym-profile-v2");
  w.kv("rtl_ticks", engineRtlTicks);
  w.kv("sites", static_cast<uint64_t>(prof != nullptr ? prof->sites().size()
                                                      : 0));
  w.kv("attributed_queries",
       prof != nullptr ? prof->totalQueries() : uint64_t{0});
  w.kv("off_step_queries",
       prof != nullptr ? prof->totalOffStepQueries() : uint64_t{0});
  w.kv("reconciled", r.ok());
  w.endObject();
}

std::string ProfileReport::formatText() const {
  std::ostringstream os;
  const Reconcile r = reconcile();
  os << "profile: " << isa << " " << program << "\n";
  os << "engine: steps=" << engineSteps << " rtl_ticks=" << engineRtlTicks
     << "\n";
  os << "solver: queries=" << solver.queries << " sat=" << solver.sat
     << " unsat=" << solver.unsat << " unknown=" << solver.unknown
     << " cache_hits=" << solver.cacheHits << " canon(terms=" << solver.canon.terms
     << " gates=" << solver.canon.gates
     << " conflicts=" << solver.canon.conflicts << ")\n";
  os << "prefilter: " << (solver.preEnabled ? "on" : "off")
     << " consulted=" << solver.preConsulted << " sat=" << solver.preSat
     << " unsat=" << solver.preUnsat << " fallbacks=" << solver.preFallback
     << " direct=" << solver.directSolves << "\n";
  if (hasQcache) {
    os << "qcache: hits=" << qcache.hits << " misses=" << qcache.misses
       << " evictions=" << qcache.evictions << " entries=" << qcache.entries
       << "\n";
  }

  if (prof != nullptr) {
    // Hottest opcodes by RTL ticks.
    std::vector<std::pair<std::string, OpRow>> ops;
    for (auto& kv : rollupOpcodes(*prof)) ops.push_back(kv);
    std::stable_sort(ops.begin(), ops.end(), [](const auto& a, const auto& b) {
      return a.second.rtlTicks > b.second.rtlTicks;
    });
    os << "hot opcodes (ticks | steps | queries | canon gates):\n";
    size_t shown = 0;
    for (const auto& [name, row] : ops) {
      if (shown++ == 10) break;
      os << "  " << name << "  " << row.rtlTicks << " | " << row.steps
         << " | " << row.queries << " | " << row.canon.gates << "\n";
    }

    // Most expensive branch sites by canonical solver gates.
    std::vector<std::pair<uint64_t, ProfileCollector::SiteCost>> hot;
    for (const auto& kv : prof->sites()) {
      if (kv.second.queries + kv.second.offStepQueries != 0) {
        hot.push_back(kv);
      }
    }
    std::stable_sort(hot.begin(), hot.end(), [](const auto& a, const auto& b) {
      return a.second.canon.gates > b.second.canon.gates;
    });
    os << "hot solver sites (gates | queries | conflicts):\n";
    shown = 0;
    for (const auto& [pc, s] : hot) {
      if (shown++ == 10) break;
      os << "  " << hexPc(pc) << " " << s.opcode << "  " << s.canon.gates
         << " | " << (s.queries + s.offStepQueries) << " | "
         << s.canon.conflicts << "\n";
    }
  }

  if (shapes != nullptr && !shapes->empty()) {
    os << "query shapes (2^k terms: queries hits sat/unsat/unknown gates):\n";
    for (const auto& [bucket, row] : *shapes) {
      os << "  2^" << bucket << "  " << row.queries << " " << row.hits << " "
         << row.sat << "/" << row.unsat << "/" << row.unknown << " "
         << row.cost.gates << "\n";
    }
  }

  os << "reconcile: rtl_ticks " << r.siteRtlTicks << "/" << r.engineRtlTicks
     << (r.ticksOk() ? " ok" : " MISMATCH") << ", queries " << r.siteQueries
     << "/" << r.solverQueries << (r.queriesOk() ? " ok" : " MISMATCH")
     << "\n";
  return os.str();
}

}  // namespace adlsym::obs
