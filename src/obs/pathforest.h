// PathForest recorder (docs/observability.md): a KLEE-process-tree-style
// record of one exploration run. Every node is a straight-line run of
// instructions between forks; a fork mints child nodes carrying the
// rendered branch condition and the solver verdict that admitted them,
// and terminal nodes carry the final path status, defect and generated
// witness inputs. Exported as the `adlsym-pathforest-v1` JSON document
// (explore --path-forest) and as Graphviz DOT (--path-dot).
#pragma once

#include <cstdint>
#include <iosfwd>
#include <optional>
#include <string>
#include <vector>

#include "core/observer.h"

namespace adlsym::core {
struct PathTreeNode;
}

namespace adlsym::obs {

struct PathNode {
  uint64_t id = 0;
  std::optional<uint64_t> parent;      // unset for the root
  uint64_t forkPc = 0;   // pc of the instruction that minted this node
  uint64_t entryPc = 0;  // first pc this node executes
  /// Branch condition(s) added at creation, rendered with smt::toString
  /// and joined with " & " (empty for the root and unconstrained forks).
  std::string cond;
  /// "sat" when the creating step issued solver queries (eager
  /// feasibility admitted the branch), "assumed" when it was enqueued
  /// unchecked. Set by the matching onStepEnd.
  std::string verdict;
  uint64_t solverQueries = 0;  // queries issued by the creating step
  uint64_t solverMicros = 0;   // their total latency (includeTiming only)
  /// Terminal state: a pathStatusName() value, "dropped" (every successor
  /// infeasible), "merged" (veritesting), "forked" (interior node — the id
  /// was retired by a fork), or "open" if the run ended with the node
  /// still on the frontier.
  std::string status = "open";
  /// truncReasonName() when status == "truncated" (governor close-out),
  /// empty otherwise.
  std::string truncReason;
  uint64_t finalPc = 0;
  uint64_t steps = 0;
  unsigned forks = 0;
  std::optional<uint64_t> exitCode;
  std::string defectKind;  // empty when the path had no defect
  uint64_t defectPc = 0;
  std::vector<core::TestCase::Value> testInputs;
  std::optional<uint64_t> mergedInto;  // host node, when status == "merged"
  std::vector<uint64_t> children;
};

class PathForestRecorder final : public core::ExploreObserver {
 public:
  struct Options {
    /// Include per-node solver microseconds in the JSON document. Off by
    /// default: --path-forest promises byte-identical output for two runs
    /// of the same seed/config, and latency depends on the clock. Tests
    /// turn it on under a ManualClock.
    bool includeTiming = false;
    /// Depth cap for rendered branch conditions (smt::toString).
    unsigned maxCondDepth = 32;
  };

  PathForestRecorder() = default;
  explicit PathForestRecorder(Options opt) : opt_(opt) {}

  // core::ExploreObserver
  void onRoot(uint64_t node, const core::MachineState& st) override;
  void onStepBegin(uint64_t node, const core::MachineState& st) override;
  void onStepEnd(const StepInfo& info) override;
  void onChild(uint64_t parent, uint64_t child, const core::MachineState& st,
               size_t condSizeBefore) override;
  void onDrop(uint64_t node, uint64_t pc) override;
  void onMerge(uint64_t host, uint64_t incoming, uint64_t pc) override;
  void onPathDone(uint64_t node, const core::PathResult& result) override;

  const std::vector<PathNode>& nodes() const { return nodes_; }

  /// The adlsym-pathforest-v1 JSON document (one compact object).
  void writeJson(std::ostream& os) const;
  std::string toJson() const;
  /// Graphviz digraph: solid edges = forks (labelled with the branch
  /// condition), dashed edges = veritesting merges.
  void writeDot(std::ostream& os) const;
  std::string toDot() const;

 private:
  friend PathForestRecorder forestFromTree(
      const std::vector<core::PathTreeNode>& tree, Options opt);

  PathNode& at(uint64_t id);

  Options opt_;
  std::vector<PathNode> nodes_;        // indexed by id (ids are dense)
  std::vector<uint64_t> stepChildren_; // minted during the current step
  uint64_t stepPc_ = 0;                // pc of the in-flight step
};

/// Rebuild a recorder from the parallel engine's merged path tree
/// (core::ParallelResult::tree): node ids are already dense and preorder,
/// so the conversion is field-for-field and the resulting JSON/DOT has the
/// same shape as a live recording — byte-identical across --jobs values.
PathForestRecorder forestFromTree(
    const std::vector<core::PathTreeNode>& tree,
    PathForestRecorder::Options opt = {});

}  // namespace adlsym::obs
