// Deterministic cost-attribution profiler (docs/observability.md): an
// ExploreObserver that charges execution cost (steps, RTL ticks) and
// solver cost (queries + canonical terms/gates/conflicts) to the ADL
// semantic site that incurred it — the pc, and through the decoder the
// mnemonic — plus a report type that joins those sites with the
// per-RTL-statement tables (core::RtlProfile), the solver aggregate and
// the query-shape rows into the adlsym-profile-v2 JSON document, a
// collapsed-stack file for flamegraph tooling, and the top-level
// "profile" summary block of the v6 stats schema. v2 adds per-site
// abstract-prefilter hit/miss attribution (docs/absdomain.md).
//
// Every number here is canonical: per-step solver deltas replay cached
// costs (smt::QueryCost), RTL tick counts depend only on what executed,
// and all tables are std::maps — so the emitted artifacts are
// byte-identical across --jobs values under --clock=manual. Schedule-
// dependent signals (wall micros, steal counts, worker utilization) are
// deliberately excluded; they live in ParallelExplorer::PoolStats and go
// to stderr only.
#pragma once

#include <cstdint>
#include <map>
#include <mutex>
#include <ostream>
#include <string>

#include "core/observer.h"
#include "core/rtlprofile.h"
#include "decode/decoder.h"
#include "smt/qcache.h"
#include "smt/solver.h"

namespace adlsym::json {
class Writer;
}

namespace adlsym::obs {

class ProfileCollector final : public core::ExploreObserver {
 public:
  ProfileCollector(const adl::ArchModel& model, const loader::Image& image)
      : image_(image), decoder_(model) {}

  /// Thread-safe: parallel workers report concurrently (one mutex guards
  /// the decoder cache and the site table). All fields it reads from
  /// StepInfo are step-scoped deltas, never run* accumulators — in the
  /// parallel engine the latter are worker-local and meaningless summed.
  void onStepEnd(const StepInfo& info) override;

  /// Budget-cut witness solves happen outside any step window; both
  /// engines report them here so per-site query sums still reconcile
  /// with the solver's aggregate query count.
  void onOffStepSolve(uint64_t pc, uint64_t queries, uint64_t canonTerms,
                      uint64_t canonGates, uint64_t canonConflicts,
                      uint64_t preHits, uint64_t preMisses) override;

  struct SiteCost {
    std::string opcode;  // mnemonic; "<illegal>" when undecodable
    uint64_t steps = 0;
    uint64_t rtlTicks = 0;
    uint64_t forks = 0;          // steps yielding >1 successor
    uint64_t queries = 0;        // issued inside this site's step windows
    uint64_t offStepQueries = 0;  // budget-cut witness solves charged here
    smt::QueryCost canon;        // canonical solver cost (replayed on hits)
    /// Abstract-prefilter outcomes of this site's queries, per issuance
    /// (replayed like canon, so schedule-independent).
    uint64_t prefilterHits = 0;
    uint64_t prefilterMisses = 0;
  };

  const std::map<uint64_t, SiteCost>& sites() const { return sites_; }

  // Collector-side totals; the report checks these against the engine and
  // solver aggregates (reconciliation).
  uint64_t totalSteps() const { return totalSteps_; }
  uint64_t totalRtlTicks() const { return totalTicks_; }
  /// In-step plus off-step queries — must equal the solver's query count.
  uint64_t totalQueries() const { return totalQueries_; }
  uint64_t totalOffStepQueries() const { return totalOffStep_; }

 private:
  mutable std::mutex mu_;
  const loader::Image& image_;
  decode::Decoder decoder_;
  std::map<uint64_t, SiteCost> sites_;  // pc -> cost
  uint64_t totalSteps_ = 0;
  uint64_t totalTicks_ = 0;
  uint64_t totalQueries_ = 0;
  uint64_t totalOffStep_ = 0;
};

/// Joined view rendered after a run: collector sites + RTL statement
/// tables + solver/qcache aggregates. Plain struct — the CLI fills the
/// fields it has and calls the writers; null optional parts are skipped.
struct ProfileReport {
  std::string isa;      // ArchModel name
  std::string program;  // image path as given on the command line

  const ProfileCollector* prof = nullptr;  // required by all writers
  const core::RtlProfile* rtl = nullptr;   // per-statement tables; optional

  uint64_t engineSteps = 0;     // ExploreSummary::totalSteps
  uint64_t engineRtlTicks = 0;  // engine.rtl_ticks counter (merged)

  smt::SolverTelemetry solver;  // aggregate snapshot (merged across workers)
  bool hasQcache = false;       // shared cache attached (parallel runs)
  smt::QueryCache::Stats qcache;
  /// Per-shape rows; null when shape profiling was off.
  const std::map<unsigned, smt::SmtSolver::ShapeRow>* shapes = nullptr;

  /// The acceptance identities: sum of per-site ticks == engine tick
  /// total, sum of per-site (in-step + off-step) queries == solver query
  /// total.
  struct Reconcile {
    uint64_t siteRtlTicks = 0;
    uint64_t engineRtlTicks = 0;
    uint64_t siteQueries = 0;
    uint64_t solverQueries = 0;
    bool ticksOk() const { return siteRtlTicks == engineRtlTicks; }
    bool queriesOk() const { return siteQueries == solverQueries; }
    bool ok() const { return ticksOk() && queriesOk(); }
  };
  Reconcile reconcile() const;

  /// The full adlsym-profile-v2 document (compact JSON + '\n').
  void writeJson(std::ostream& os) const;
  /// Collapsed-stack lines ("frame;frame value") for flamegraph tooling.
  /// Roots name their unit: exec_ticks (RTL statements), solver_gates
  /// (canonical AIG gates).
  void writeFolded(std::ostream& os) const;
  /// The top-level "profile" summary block of adlsym-stats-v8 (appended
  /// to an open object; emitted only on profiling runs).
  void writeSummary(json::Writer& w) const;
  /// Human-readable tables for `adlsym profile` stdout.
  std::string formatText() const;
};

}  // namespace adlsym::obs
