#include "obs/events.h"

#include <algorithm>
#include <charconv>
#include <cstdio>
#include <initializer_list>
#include <istream>
#include <ostream>
#include <string_view>

#include "core/testgen.h"
#include "support/error.h"
#include "support/json.h"

namespace adlsym::obs {

namespace {

/// Snapshot depth-histogram bucket: 0 = depth 0, k = [2^(k-1), 2^k) for
/// k in 1..6, 7 = 64 and deeper.
size_t depthBucket(uint64_t depth) {
  size_t b = 0;
  while (depth != 0 && b < 7) {
    depth >>= 1;
    ++b;
  }
  return b;
}

void appendU64(std::string* out, uint64_t v) {
  char buf[20];
  const auto [end, ec] = std::to_chars(buf, buf + sizeof buf, v);
  (void)ec;
  out->append(buf, end);
}

/// True when the string can go between quotes verbatim (the hot-path
/// case: path keys, status names, ISA names).
bool plainJsonString(std::string_view s) {
  for (const char c : s) {
    const auto u = static_cast<unsigned char>(c);
    if (u < 0x20 || c == '"' || c == '\\') return false;
  }
  return true;
}

}  // namespace

EventBus::EventBus(std::ostream& os, telemetry::Telemetry* tel,
                   EventBusOptions opts)
    : os_(os), tel_(tel), opts_(opts) {}

void EventBus::appendJsonString(std::string_view v) {
  if (plainJsonString(v)) {
    line_ += v;
  } else {
    line_ += json::escape(v);
  }
}

void EventBus::kvD(const char* key, double v) {
  line_ += ",\"";
  line_ += key;
  line_ += "\":";
  char buf[40];
  std::snprintf(buf, sizeof buf, "%.9g", v);
  line_ += buf;
}

void EventBus::kvB(const char* key, bool v) {
  line_ += ",\"";
  line_ += key;
  line_ += "\":";
  line_ += v ? "true" : "false";
}

void EventBus::commit(uint64_t& counter, bool flushNow) {
  line_ += "}\n";
  os_.write(line_.data(), static_cast<std::streamsize>(line_.size()));
  if (flushNow) os_.flush();
  if (os_.good()) {
    ++counter;
  } else {
    ++counts_.dropped;
    os_.clear();  // keep trying: later writes may succeed (pipe reopened)
  }
}

void EventBus::runBegin(const RunMeta& meta) {
  std::lock_guard<std::mutex> lk(mu_);
  meta_ = meta;
  lineBegin("run_begin");
  kvS("schema", "adlsym-events-v1");
  kvS("command", meta_.command);
  kvS("isa", meta_.isa);
  kvS("strategy", meta_.strategy);
  kvS("program", meta_.program);
  kvU("snapshot_every_steps", opts_.snapshotEverySteps);
  kvU("code_pcs", opts_.codePcs);
  commit(counts_.runBegin, /*flushNow=*/true);
}

void EventBus::runEnd(const core::ExploreSummary& summary,
                      const smt::SolverTelemetry& solver,
                      uint64_t engineRtlTicks) {
  std::lock_guard<std::mutex> lk(mu_);
  lineBegin("run_end");
  kvS("stop_reason", summary.stopReason);
  kvU("paths", uint64_t(summary.paths.size()));
  kvU("exited", uint64_t(summary.numExited()));
  kvU("defects", uint64_t(summary.numDefects()));
  kvU("steps", summary.totalSteps);
  kvU("forks", summary.totalForks);
  kvU("dropped", summary.statesDropped);
  kvU("merged", summary.statesMerged);
  kvU("truncated", summary.statesTruncated);
  kvU("unknowns", summary.solverUnknowns);
  kvU("covered_pcs", uint64_t(summary.coveredPcs));
  kvU("queries", solver.queries);
  kvU("sat", solver.sat);
  kvU("unsat", solver.unsat);
  kvU("unknown", solver.unknown);
  kvU("cache_hits", solver.cacheHits);
  kvU("pre_shortcircuit", solver.preShortcircuit);
  kvU("pre_consulted", solver.preConsulted);
  kvU("direct_solves", solver.directSolves);
  kvU("canon_terms", solver.canon.terms);
  kvU("canon_gates", solver.canon.gates);
  kvU("canon_conflicts", solver.canon.conflicts);
  if (engineRtlTicks != 0) kvU("rtl_ticks", engineRtlTicks);
  commit(counts_.runEnd, /*flushNow=*/true);
}

void EventBus::onStepEnd(const StepInfo& info) {
  std::lock_guard<std::mutex> lk(mu_);
  // Roll the live gauges forward (snapshot feedstock).
  liveSteps_ = info.totalSteps;
  liveFrontier_ = info.frontierSize;
  liveFrontierBytes_ = info.frontierBytes;
  livePathsDone_ = info.pathsDone;
  liveCovered_ = info.coveredPcs;
  liveQueries_ = info.runSolverQueries;
  liveCacheHits_ = info.runCacheHits;
  liveSolverMicros_ = info.runSolverMicros;
  livePreHits_ += info.stepPrefilterHits;
  livePreMisses_ += info.stepPrefilterMisses;
  ++depthHist_[depthBucket(info.depth)];

  // Deterministic fields only: everything below is attributed to the
  // structural (pathKey, pathSteps) coordinate and is schedule-independent
  // by the canonical-cost contract (docs/observability.md).
  lineBegin("step");
  kvS("path", info.pathKey);
  kvU("n", info.pathSteps);
  kvU("pc", info.pc);
  kvU("succ", uint64_t(info.numSuccessors));
  kvU("depth", info.depth);
  kvU("rtl_ticks", info.stepRtlTicks);
  kvU("queries", info.stepSolverQueries);
  kvU("canon_terms", info.stepCanonTerms);
  kvU("canon_gates", info.stepCanonGates);
  kvU("canon_conflicts", info.stepCanonConflicts);
  kvU("pre_hits", info.stepPrefilterHits);
  kvU("pre_misses", info.stepPrefilterMisses);
  commit(counts_.step);

  ++stepEvents_;
  if (opts_.snapshotEverySteps != 0 &&
      stepEvents_ % opts_.snapshotEverySteps == 0) {
    emitSnapshot();
  }
}

void EventBus::onOffStepSolve(uint64_t pc, uint64_t queries,
                              uint64_t canonTerms, uint64_t canonGates,
                              uint64_t canonConflicts, uint64_t preHits,
                              uint64_t preMisses) {
  std::lock_guard<std::mutex> lk(mu_);
  livePreHits_ += preHits;
  livePreMisses_ += preMisses;
  lineBegin("offstep");
  kvU("pc", pc);
  kvU("queries", queries);
  kvU("canon_terms", canonTerms);
  kvU("canon_gates", canonGates);
  kvU("canon_conflicts", canonConflicts);
  kvU("pre_hits", preHits);
  kvU("pre_misses", preMisses);
  commit(counts_.offstep);
}

void EventBus::onMerge(uint64_t host, uint64_t incoming, uint64_t pc) {
  std::lock_guard<std::mutex> lk(mu_);
  // Merging is sequential-only (the CLI rejects --merge with --jobs), so
  // the node ids here are deterministic.
  lineBegin("merge");
  kvU("host", host);
  kvU("incoming", incoming);
  kvU("pc", pc);
  commit(counts_.merge);
}

void EventBus::onPathDone(uint64_t /*node*/, const core::PathResult& result) {
  std::lock_guard<std::mutex> lk(mu_);
  lineBegin("path_done");
  kvS("path", result.pathKey);
  kvS("status", core::pathStatusName(result.status));
  if (result.status == core::PathStatus::Truncated) {
    kvS("trunc_reason", core::truncReasonName(result.truncReason));
  }
  kvU("final_pc", result.finalPc);
  kvU("steps", result.steps);
  kvU("forks", uint64_t(result.forks));
  if (result.exitCode.has_value()) kvU("exit", *result.exitCode);
  if (result.defect.has_value()) {
    kvS("defect", core::defectKindName(result.defect->kind));
    kvU("defect_pc", result.defect->pc);
  }
  commit(counts_.pathDone);
}

void EventBus::onCheck(const std::vector<smt::TermRef>& /*permanent*/,
                       const std::vector<smt::TermRef>& assumptions,
                       smt::CheckResult result, uint64_t micros, bool cached) {
  std::lock_guard<std::mutex> lk(mu_);
  // Live event: micros and the solve/cache split depend on the schedule.
  // The *count* of query events is still deterministic (one per check).
  lineBegin("query");
  kvS("result", smt::checkResultName(result));
  kvU("micros", micros);
  kvB("cached", cached);
  kvU("assumptions", uint64_t(assumptions.size()));
  commit(counts_.query);
}

void EventBus::heartbeat(size_t frontier, size_t pathsDone, uint64_t steps,
                         double stepsPerSec, size_t coveredPcs,
                         double solverShare, double qcacheRate, uint64_t depth,
                         uint64_t frontierBytes) {
  std::lock_guard<std::mutex> lk(mu_);
  lineBegin("heartbeat");
  kvU("frontier", uint64_t(frontier));
  kvU("paths", uint64_t(pathsDone));
  kvU("steps", steps);
  kvD("steps_per_sec", stepsPerSec);
  kvU("covered", uint64_t(coveredPcs));
  if (opts_.codePcs != 0) {
    kvD("coverage_pct", 100.0 * double(coveredPcs) / double(opts_.codePcs));
  }
  kvD("solver_share", solverShare);
  kvD("qcache_hit_rate", qcacheRate);
  kvU("depth", depth);
  kvU("frontier_bytes", frontierBytes);
  commit(counts_.heartbeat, /*flushNow=*/true);
}

void EventBus::emitSnapshot() {
  // An extra clock read for elapsed time; under --clock=manual this just
  // advances the work index by one tick.
  const uint64_t now =
      tel_ != nullptr ? tel_->nowMicros() : telemetry::Clock::system().nowMicros();
  const uint64_t elapsed = now > startMicros_ ? now - startMicros_ : 0;

  lineBegin("snapshot");
  // Self-describing: enough metadata that `adlsym tail` can join mid-run.
  kvS("command", meta_.command);
  kvS("isa", meta_.isa);
  kvS("strategy", meta_.strategy);
  kvU("steps", liveSteps_);
  kvU("frontier", liveFrontier_);
  kvU("frontier_bytes", liveFrontierBytes_);
  kvU("paths_done", livePathsDone_);
  kvU("covered_pcs", liveCovered_);
  kvU("code_pcs", opts_.codePcs);
  if (opts_.codePcs != 0) {
    kvD("coverage_pct", 100.0 * double(liveCovered_) / double(opts_.codePcs));
  }
  kvU("queries", liveQueries_);
  kvD("qcache_hit_rate",
      liveQueries_ != 0 ? double(liveCacheHits_) / double(liveQueries_) : 0.0);
  kvD("solver_share",
      elapsed != 0 ? double(liveSolverMicros_) / double(elapsed) : 0.0);
  kvU("pre_hits", livePreHits_);
  kvU("pre_misses", livePreMisses_);
  kvU("max_frontier", opts_.maxFrontier);
  kvU("mem_budget_bytes", opts_.memBudgetBytes);
  line_ += ",\"depth_hist\":[";
  for (size_t i = 0; i < 8; ++i) {
    if (i != 0) line_ += ',';
    appendU64(&line_, depthHist_[i]);
  }
  line_ += ']';
  commit(counts_.snapshot, /*flushNow=*/true);
  // The histogram covers steps *since the previous snapshot*.
  for (uint64_t& b : depthHist_) b = 0;
}

EventBus::Counts EventBus::counts() const {
  std::lock_guard<std::mutex> lk(mu_);
  return counts_;
}

void EventBus::writeStatsJson(json::Writer& w) const {
  std::lock_guard<std::mutex> lk(mu_);
  w.beginObject();
  w.kv("enabled", true);
  w.kv("schema", "adlsym-events-v1");
  w.kv("snapshot_every_steps", opts_.snapshotEverySteps);
  w.key("emitted");
  w.beginObject();
  w.kv("run_begin", counts_.runBegin);
  w.kv("step", counts_.step);
  w.kv("snapshot", counts_.snapshot);
  w.kv("offstep", counts_.offstep);
  w.kv("merge", counts_.merge);
  w.kv("path_done", counts_.pathDone);
  w.kv("query", counts_.query);
  w.kv("heartbeat", counts_.heartbeat);
  w.kv("run_end", counts_.runEnd);
  w.endObject();
  w.kv("dropped", counts_.dropped);
  w.endObject();
}

void EventBus::flush() {
  std::lock_guard<std::mutex> lk(mu_);
  os_.flush();
}

void EventBus::writeCkptJson(json::Writer& w, const CkptGauges& g) const {
  std::lock_guard<std::mutex> lk(mu_);
  w.beginObject();
  w.kv("seq", seq_);
  w.kv("step_events", stepEvents_);
  w.kv("start_micros", startMicros_);
  w.kv("started", started_);
  w.key("counts").beginObject();
  w.kv("run_begin", counts_.runBegin);
  w.kv("step", counts_.step);
  w.kv("snapshot", counts_.snapshot);
  w.kv("offstep", counts_.offstep);
  w.kv("merge", counts_.merge);
  w.kv("path_done", counts_.pathDone);
  w.kv("query", counts_.query);
  w.kv("heartbeat", counts_.heartbeat);
  w.kv("run_end", counts_.runEnd);
  w.kv("dropped", counts_.dropped);
  w.endObject();
  w.key("live").beginObject();
  w.kv("steps", g.steps);
  w.kv("frontier", g.frontier);
  w.kv("frontier_bytes", g.frontierBytes);
  w.kv("paths_done", g.pathsDone);
  w.kv("covered", g.covered);
  w.kv("queries", g.queries);
  w.kv("cache_hits", g.cacheHits);
  w.kv("solver_micros", g.solverMicros);
  w.kv("pre_hits", livePreHits_);
  w.kv("pre_misses", livePreMisses_);
  w.endObject();
  w.endObject();
}

void EventBus::resumeRun(const RunMeta& meta, const json::Value& v) {
  const auto u64 = [&](const json::Value& obj, const char* name) -> uint64_t {
    const json::Value* f = obj.find(name);
    if (f == nullptr) {
      throw InputError(std::string("events section: missing '") + name + "'");
    }
    return f->asU64();
  };
  std::lock_guard<std::mutex> lk(mu_);
  meta_ = meta;
  seq_ = u64(v, "seq");
  stepEvents_ = u64(v, "step_events");
  startMicros_ = u64(v, "start_micros");
  const json::Value* started = v.find("started");
  started_ = started != nullptr && started->boolean;
  const json::Value* counts = v.find("counts");
  const json::Value* live = v.find("live");
  if (counts == nullptr || !counts->isObject() || live == nullptr ||
      !live->isObject()) {
    throw InputError("events section: missing 'counts'/'live'");
  }
  counts_.runBegin = u64(*counts, "run_begin");
  counts_.step = u64(*counts, "step");
  counts_.snapshot = u64(*counts, "snapshot");
  counts_.offstep = u64(*counts, "offstep");
  counts_.merge = u64(*counts, "merge");
  counts_.pathDone = u64(*counts, "path_done");
  counts_.query = u64(*counts, "query");
  counts_.heartbeat = u64(*counts, "heartbeat");
  counts_.runEnd = u64(*counts, "run_end");
  counts_.dropped = u64(*counts, "dropped");
  liveSteps_ = u64(*live, "steps");
  liveFrontier_ = u64(*live, "frontier");
  liveFrontierBytes_ = u64(*live, "frontier_bytes");
  livePathsDone_ = u64(*live, "paths_done");
  liveCovered_ = u64(*live, "covered");
  liveQueries_ = u64(*live, "queries");
  liveCacheHits_ = u64(*live, "cache_hits");
  liveSolverMicros_ = u64(*live, "solver_micros");
  livePreHits_ = u64(*live, "pre_hits");
  livePreMisses_ = u64(*live, "pre_misses");
  for (uint64_t& b : depthHist_) b = 0;
}

// ---- stream tools -----------------------------------------------------

namespace {

/// Canonical sort rank of a deterministic event type. Unknown types (from
/// a future schema revision) sort between the known record kinds and the
/// run_end trailer.
int typeRank(const std::string& type) {
  if (type == "run_begin") return 0;
  if (type == "step") return 1;
  if (type == "offstep") return 2;
  if (type == "merge") return 3;
  if (type == "path_done") return 4;
  if (type == "run_end") return 6;
  return 5;
}

bool isLiveType(const std::string& type) {
  return type == "snapshot" || type == "heartbeat" || type == "query";
}

/// Remove the schedule-dependent `"seq":N` / `"t":N` members from the
/// original line *textually*. Working on the original bytes (instead of
/// re-serializing the parsed value) keeps 64-bit integers exact: the
/// parsed representation stores numbers as doubles. Safe because a raw
/// `,"seq":` / `,"t":` cannot occur inside a JSON string (its quote would
/// be escaped) and both members are integer-valued by construction.
std::string stripSeqAndTime(const std::string& line) {
  std::string out = line;
  for (const char* member : {",\"seq\":", ",\"t\":"}) {
    const size_t p = out.find(member);
    if (p == std::string::npos) continue;
    size_t q = p + std::string_view(member).size();
    while (q < out.size() && out[q] >= '0' && out[q] <= '9') ++q;
    out.erase(p, q - p);
  }
  return out;
}

/// Parse a dotted structural path key ("", "0", "1.0.2") into its numeric
/// components for ordering ("10" must sort after "2").
std::vector<uint32_t> parsePathKey(const std::string& key) {
  std::vector<uint32_t> out;
  if (key.empty()) return out;
  uint32_t cur = 0;
  for (const char c : key) {
    if (c == '.') {
      out.push_back(cur);
      cur = 0;
    } else if (c >= '0' && c <= '9') {
      cur = cur * 10 + uint32_t(c - '0');
    }
  }
  out.push_back(cur);
  return out;
}

uint64_t u64Field(const json::Value& ev, const char* key) {
  const json::Value* f = ev.find(key);
  return f != nullptr && f->isNumber() ? f->asU64() : 0;
}

std::string strField(const json::Value& ev, const char* key) {
  const json::Value* f = ev.find(key);
  return f != nullptr && f->isString() ? f->str : std::string();
}

/// Parse one event line, enforcing the version envelope. `lineNo` is
/// 1-based for error messages.
json::Value parseEventLine(const std::string& line, size_t lineNo) {
  json::Value ev;
  try {
    ev = json::parse(line);
  } catch (const Error& e) {
    throw InputError("events line " + std::to_string(lineNo) + ": " +
                     e.what());
  }
  if (!ev.isObject()) {
    throw InputError("events line " + std::to_string(lineNo) +
                     ": not a JSON object");
  }
  const json::Value* v = ev.find("v");
  if (v == nullptr || !v->isNumber() || v->asU64() != 1) {
    throw InputError("events line " + std::to_string(lineNo) +
                     ": unsupported event version (want v=1)");
  }
  if (strField(ev, "type").empty()) {
    throw InputError("events line " + std::to_string(lineNo) +
                     ": missing \"type\"");
  }
  return ev;
}

struct CanonEntry {
  int rank = 0;
  std::vector<uint32_t> path;
  uint64_t n = 0;
  std::string line;

  bool operator<(const CanonEntry& o) const {
    if (rank != o.rank) return rank < o.rank;
    if (path != o.path) return path < o.path;
    if (n != o.n) return n < o.n;
    return line < o.line;
  }
};

}  // namespace

size_t canonicalizeEvents(std::istream& in, std::ostream& out) {
  std::vector<CanonEntry> entries;
  std::string line;
  size_t lineNo = 0;
  while (std::getline(in, line)) {
    ++lineNo;
    if (line.empty()) continue;
    const json::Value ev = parseEventLine(line, lineNo);
    const std::string type = strField(ev, "type");
    if (isLiveType(type)) continue;
    CanonEntry e;
    e.rank = typeRank(type);
    e.path = parsePathKey(strField(ev, "path"));
    e.n = u64Field(ev, "n");
    e.line = stripSeqAndTime(line);
    entries.push_back(std::move(e));
  }
  std::sort(entries.begin(), entries.end());
  for (const CanonEntry& e : entries) out << e.line << '\n';
  return entries.size();
}

EventsSummary summarizeEvents(std::istream& in) {
  EventsSummary es;
  std::string line;
  size_t lineNo = 0;
  while (std::getline(in, line)) {
    ++lineNo;
    if (line.empty()) continue;
    const json::Value ev = parseEventLine(line, lineNo);
    const std::string type = strField(ev, "type");
    if (type == "run_begin") {
      es.sawRunBegin = true;
      es.command = strField(ev, "command");
      es.isa = strField(ev, "isa");
      es.strategy = strField(ev, "strategy");
      const std::string schema = strField(ev, "schema");
      if (schema != "adlsym-events-v1") {
        es.problems.push_back("run_begin schema is '" + schema +
                              "', want adlsym-events-v1");
      }
    } else if (type == "step") {
      ++es.steps;
      const uint64_t succ = u64Field(ev, "succ");
      if (succ == 0) {
        ++es.dropped;
      } else if (succ > 1) {
        es.forks += succ - 1;
      }
      es.stepQueries += u64Field(ev, "queries");
      es.rtlTicks += u64Field(ev, "rtl_ticks");
      es.canonTerms += u64Field(ev, "canon_terms");
      es.canonGates += u64Field(ev, "canon_gates");
      es.canonConflicts += u64Field(ev, "canon_conflicts");
      es.preHits += u64Field(ev, "pre_hits");
      es.preMisses += u64Field(ev, "pre_misses");
    } else if (type == "offstep") {
      ++es.offstepEvents;
      es.offstepQueries += u64Field(ev, "queries");
      es.canonTerms += u64Field(ev, "canon_terms");
      es.canonGates += u64Field(ev, "canon_gates");
      es.canonConflicts += u64Field(ev, "canon_conflicts");
      es.preHits += u64Field(ev, "pre_hits");
      es.preMisses += u64Field(ev, "pre_misses");
    } else if (type == "merge") {
      ++es.merges;
    } else if (type == "path_done") {
      ++es.pathsDone;
      const std::string status = strField(ev, "status");
      ++es.pathStatuses[status];
      if (status == "truncated") ++es.truncated;
      if (status == "exited") ++es.exited;
      if (ev.find("defect") != nullptr) ++es.defects;
    } else if (type == "run_end") {
      es.sawRunEnd = true;
      es.stopReason = strField(ev, "stop_reason");
      es.endSteps = u64Field(ev, "steps");
      es.endForks = u64Field(ev, "forks");
      es.endDropped = u64Field(ev, "dropped");
      es.endMerged = u64Field(ev, "merged");
      es.endPaths = u64Field(ev, "paths");
      es.endTruncated = u64Field(ev, "truncated");
      es.endCoveredPcs = u64Field(ev, "covered_pcs");
      es.endQueries = u64Field(ev, "queries");
      es.endCacheHits = u64Field(ev, "cache_hits");
      es.endPreShortcircuit = u64Field(ev, "pre_shortcircuit");
      es.endPreConsulted = u64Field(ev, "pre_consulted");
      es.endDirectSolves = u64Field(ev, "direct_solves");
      es.endCanonTerms = u64Field(ev, "canon_terms");
      es.endCanonGates = u64Field(ev, "canon_gates");
      es.endCanonConflicts = u64Field(ev, "canon_conflicts");
      es.endHasRtlTicks = ev.find("rtl_ticks") != nullptr;
      es.endRtlTicks = u64Field(ev, "rtl_ticks");
    } else if (type == "query") {
      ++es.queryEvents;
    } else if (type == "snapshot") {
      ++es.snapshotEvents;
    } else if (type == "heartbeat") {
      ++es.heartbeatEvents;
    }
  }

  // Reconciliation identities (docs/observability.md). Every mismatch is a
  // dropped/duplicated/corrupted record somewhere.
  auto expect = [&es](uint64_t got, uint64_t want, const char* what) {
    if (got != want) {
      es.problems.push_back(std::string(what) + ": stream has " +
                            std::to_string(got) + ", run_end says " +
                            std::to_string(want));
    }
  };
  if (!es.sawRunBegin) es.problems.push_back("missing run_begin event");
  if (!es.sawRunEnd) {
    es.problems.push_back("missing run_end event (truncated stream?)");
  } else {
    expect(es.steps, es.endSteps, "steps");
    expect(es.forks, es.endForks, "forks");
    expect(es.dropped, es.endDropped, "dropped states");
    expect(es.merges, es.endMerged, "merges");
    expect(es.pathsDone, es.endPaths, "completed paths");
    expect(es.truncated, es.endTruncated, "truncated paths");
    expect(es.canonTerms, es.endCanonTerms, "canonical terms");
    expect(es.canonGates, es.endCanonGates, "canonical gates");
    expect(es.canonConflicts, es.endCanonConflicts, "canonical conflicts");
    if (1 + es.forks != es.pathsDone + es.dropped + es.merges) {
      es.problems.push_back(
          "paths identity violated: 1 + " + std::to_string(es.forks) +
          " forks != " + std::to_string(es.pathsDone) + " paths + " +
          std::to_string(es.dropped) + " dropped + " +
          std::to_string(es.merges) + " merged");
    }
    if (es.stepQueries + es.offstepQueries != es.endQueries) {
      es.problems.push_back(
          "query attribution violated: " + std::to_string(es.stepQueries) +
          " step + " + std::to_string(es.offstepQueries) +
          " offstep queries != " + std::to_string(es.endQueries) + " total");
    }
    if (es.endCacheHits + es.endPreShortcircuit + es.endPreConsulted +
            es.endDirectSolves !=
        es.endQueries) {
      es.problems.push_back(
          "4-bucket accounting violated: " + std::to_string(es.endCacheHits) +
          " cached + " + std::to_string(es.endPreShortcircuit) +
          " shortcircuit + " + std::to_string(es.endPreConsulted) +
          " consulted + " + std::to_string(es.endDirectSolves) +
          " direct != " + std::to_string(es.endQueries) + " queries");
    }
    if (es.endHasRtlTicks && es.rtlTicks != es.endRtlTicks) {
      es.problems.push_back(
          "profile tick totals violated: step events carry " +
          std::to_string(es.rtlTicks) + " rtl ticks, run_end says " +
          std::to_string(es.endRtlTicks));
    }
    if (es.queryEvents != 0) {
      // query events are only present when the bus listened to the solver;
      // when they are, one event per check must have been recorded.
      expect(es.queryEvents, es.endQueries, "query events");
    }
  }
  return es;
}

std::string EventsSummary::formatText() const {
  std::ostringstream os;
  os << "run: " << (command.empty() ? "?" : command) << " isa=" << isa
     << " strategy=" << strategy;
  if (sawRunEnd) {
    os << " stop=" << (stopReason.empty() ? "complete" : stopReason);
  }
  os << '\n';
  os << "steps: " << steps << "  forks: " << forks << "  dropped: " << dropped
     << "  merged: " << merges << "  paths: " << pathsDone << '\n';
  os << "statuses:";
  for (const auto& [status, n] : pathStatuses) {
    os << ' ' << status << '=' << n;
  }
  if (pathStatuses.empty()) os << " (none)";
  os << '\n';
  os << "queries: step=" << stepQueries << " offstep=" << offstepQueries
     << " total=" << stepQueries + offstepQueries;
  if (sawRunEnd) os << " (run_end: " << endQueries << ")";
  os << '\n';
  os << "canon: terms=" << canonTerms << " gates=" << canonGates
     << " conflicts=" << canonConflicts << '\n';
  if (rtlTicks != 0 || endHasRtlTicks) {
    os << "rtl ticks: " << rtlTicks;
    if (endHasRtlTicks) os << " (run_end: " << endRtlTicks << ")";
    os << '\n';
  }
  os << "live: query=" << queryEvents << " snapshot=" << snapshotEvents
     << " heartbeat=" << heartbeatEvents << '\n';
  if (problems.empty()) {
    os << "reconciliation: OK\n";
  } else {
    os << "reconciliation: " << problems.size() << " problem(s)\n";
    for (const std::string& p : problems) os << "  - " << p << '\n';
  }
  return os.str();
}

std::vector<std::string> reconcileWithStats(const EventsSummary& es,
                                            const json::Value& stats) {
  std::vector<std::string> out;
  if (!stats.isObject()) {
    out.push_back("stats document is not a JSON object");
    return out;
  }
  auto statU64 = [&stats](std::initializer_list<const char*> path,
                          uint64_t& dst) {
    const json::Value* v = &stats;
    for (const char* key : path) {
      v = v->find(key);
      if (v == nullptr) return false;
    }
    if (!v->isNumber()) return false;
    dst = v->asU64();
    return true;
  };
  auto check = [&out, &statU64](std::initializer_list<const char*> path,
                                uint64_t want, const char* what) {
    uint64_t got = 0;
    std::string dotted;
    for (const char* key : path) {
      if (!dotted.empty()) dotted += '.';
      dotted += key;
    }
    if (!statU64(path, got)) {
      out.push_back("stats missing " + dotted);
      return;
    }
    if (got != want) {
      out.push_back("stats " + dotted + "=" + std::to_string(got) + " but " +
                    what + "=" + std::to_string(want));
    }
  };

  const json::Value* schema = stats.find("schema");
  if (schema == nullptr || !schema->isString() ||
      schema->str != "adlsym-stats-v8") {
    out.push_back("stats schema is not adlsym-stats-v8");
  }
  check({"summary", "total_steps"}, es.steps, "event steps");
  check({"summary", "total_forks"}, es.forks, "event forks");
  check({"summary", "states_dropped"}, es.dropped, "event drops");
  check({"summary", "states_merged"}, es.merges, "event merges");
  check({"summary", "states_truncated"}, es.truncated, "event truncations");
  check({"summary", "paths"}, es.pathsDone, "event path_dones");
  check({"summary", "exited"}, es.exited, "event exits");
  check({"summary", "defects"}, es.defects, "event defects");
  check({"summary", "covered_pcs"}, es.endCoveredPcs, "run_end covered_pcs");
  const json::Value* stop = stats.find("summary");
  stop = stop != nullptr ? stop->find("stop_reason") : nullptr;
  if (stop == nullptr || !stop->isString()) {
    out.push_back("stats missing summary.stop_reason");
  } else if (stop->str != es.stopReason) {
    out.push_back("stats summary.stop_reason='" + stop->str +
                  "' but run_end stop_reason='" + es.stopReason + "'");
  }
  check({"solver", "queries"}, es.stepQueries + es.offstepQueries,
        "attributed event queries");
  check({"solver", "cache_hits"}, es.endCacheHits, "run_end cache_hits");
  check({"solver", "canon", "terms"}, es.canonTerms, "event canon terms");
  check({"solver", "canon", "gates"}, es.canonGates, "event canon gates");
  check({"solver", "canon", "conflicts"}, es.canonConflicts,
        "event canon conflicts");
  check({"prefilter", "shortcircuit"}, es.endPreShortcircuit,
        "run_end pre_shortcircuit");
  check({"prefilter", "consulted"}, es.endPreConsulted,
        "run_end pre_consulted");
  check({"prefilter", "direct"}, es.endDirectSolves, "run_end direct_solves");
  if (es.endHasRtlTicks && stats.find("profile") != nullptr) {
    check({"profile", "rtl_ticks"}, es.rtlTicks, "event rtl ticks");
  }
  // The stats "events" block must agree with the stream itself (modulo
  // drops: a dropped write is counted in neither).
  uint64_t dropped = 0;
  if (statU64({"events", "dropped"}, dropped) && dropped == 0) {
    check({"events", "emitted", "run_begin"}, es.sawRunBegin ? 1 : 0,
          "run_begin events");
    check({"events", "emitted", "step"}, es.steps, "step events");
    check({"events", "emitted", "offstep"}, es.offstepEvents,
          "offstep events");
    check({"events", "emitted", "merge"}, es.merges, "merge events");
    check({"events", "emitted", "path_done"}, es.pathsDone,
          "path_done events");
    check({"events", "emitted", "query"}, es.queryEvents, "query events");
    check({"events", "emitted", "snapshot"}, es.snapshotEvents,
          "snapshot events");
    check({"events", "emitted", "heartbeat"}, es.heartbeatEvents,
          "heartbeat events");
    check({"events", "emitted", "run_end"}, es.sawRunEnd ? 1 : 0,
          "run_end events");
  }
  return out;
}

// ---- live inspector ----------------------------------------------------

void TailState::apply(const json::Value& ev) {
  if (!ev.isObject()) return;
  ++events_;
  lastSeq_ = u64Field(ev, "seq");
  lastMicros_ = u64Field(ev, "t");
  const std::string type = strField(ev, "type");
  ++typeCounts_[type.empty() ? "?" : type];
  if (type == "run_begin") {
    command_ = strField(ev, "command");
    isa_ = strField(ev, "isa");
    strategy_ = strField(ev, "strategy");
    program_ = strField(ev, "program");
    codePcs_ = u64Field(ev, "code_pcs");
  } else if (type == "step") {
    depth_ = u64Field(ev, "depth");
  } else if (type == "snapshot") {
    if (command_.empty()) {  // mid-stream join: adopt the echoed metadata
      command_ = strField(ev, "command");
      isa_ = strField(ev, "isa");
      strategy_ = strField(ev, "strategy");
    }
    steps_ = u64Field(ev, "steps");
    frontier_ = u64Field(ev, "frontier");
    frontierBytes_ = u64Field(ev, "frontier_bytes");
    pathsDone_ = u64Field(ev, "paths_done");
    covered_ = u64Field(ev, "covered_pcs");
    if (const json::Value* c = ev.find("code_pcs");
        c != nullptr && c->isNumber()) {
      codePcs_ = c->asU64();
    }
    if (const json::Value* r = ev.find("qcache_hit_rate");
        r != nullptr && r->isNumber()) {
      qcacheRate_ = r->number;
    }
    if (const json::Value* h = ev.find("depth_hist");
        h != nullptr && h->isArray()) {
      depthHist_.clear();
      for (const json::Value& b : h->array) depthHist_.push_back(b.asU64());
    }
  } else if (type == "heartbeat") {
    steps_ = u64Field(ev, "steps");
    frontier_ = u64Field(ev, "frontier");
    frontierBytes_ = u64Field(ev, "frontier_bytes");
    pathsDone_ = u64Field(ev, "paths");
    covered_ = u64Field(ev, "covered");
    depth_ = u64Field(ev, "depth");
    if (const json::Value* r = ev.find("qcache_hit_rate");
        r != nullptr && r->isNumber()) {
      qcacheRate_ = r->number;
    }
    if (const json::Value* s = ev.find("steps_per_sec");
        s != nullptr && s->isNumber()) {
      stepsPerSec_ = s->number;
    }
  } else if (type == "path_done") {
    pathsDone_ = typeCounts_["path_done"];
  } else if (type == "run_end") {
    done_ = true;
    stopReason_ = strField(ev, "stop_reason");
    steps_ = u64Field(ev, "steps");
    covered_ = u64Field(ev, "covered_pcs");
    endPaths_ = u64Field(ev, "paths");
    endDefects_ = u64Field(ev, "defects");
    endQueries_ = u64Field(ev, "queries");
    pathsDone_ = endPaths_;
    frontier_ = 0;
  }
}

std::string TailState::render() const {
  std::ostringstream os;
  os << "run: " << (command_.empty() ? "?" : command_);
  if (!isa_.empty()) os << "  isa=" << isa_;
  if (!strategy_.empty()) os << "  strategy=" << strategy_;
  if (!program_.empty()) os << "  program=" << program_;
  os << '\n';
  os << "events: " << events_ << " (seq " << lastSeq_ << ", t=" << lastMicros_
     << "us)\n";
  os << "steps: " << steps_ << "  frontier: " << frontier_;
  if (frontierBytes_ != 0) {
    os << " (" << frontierBytes_ / 1024 << " KiB)";
  }
  os << "  paths: " << pathsDone_ << "  depth: " << depth_ << '\n';
  os << "coverage: " << covered_;
  if (codePcs_ != 0) {
    char pct[32];
    std::snprintf(pct, sizeof(pct), "%.1f",
                  100.0 * double(covered_) / double(codePcs_));
    os << "/" << codePcs_ << " pcs (" << pct << "%)";
  } else {
    os << " pcs";
  }
  {
    char rate[32];
    std::snprintf(rate, sizeof(rate), "%.1f", 100.0 * qcacheRate_);
    os << "  qcache: " << rate << "%";
  }
  if (stepsPerSec_ > 0.0) {
    char sps[32];
    std::snprintf(sps, sizeof(sps), "%.0f", stepsPerSec_);
    os << "  steps/s: " << sps;
  }
  os << '\n';
  if (!depthHist_.empty()) {
    os << "depth hist:";
    for (const uint64_t b : depthHist_) os << ' ' << b;
    os << '\n';
  }
  os << "counts:";
  for (const auto& [type, n] : typeCounts_) os << ' ' << type << '=' << n;
  os << '\n';
  if (done_) {
    os << "done: stop=" << (stopReason_.empty() ? "complete" : stopReason_)
       << "  paths=" << endPaths_ << "  defects=" << endDefects_
       << "  queries=" << endQueries_ << '\n';
  }
  return os.str();
}

}  // namespace adlsym::obs
