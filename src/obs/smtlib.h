// SMT-LIB 2 reader for the replay pipeline (docs/observability.md):
// parses the QF_BV subset that smt::toSmtLib emits — set-logic,
// declare-const with (_ BitVec N) sorts, assert, check-sat, #x/#b
// constants, ((_ extract hi lo) t) and the fixed operator vocabulary of
// smt::kindName — back into terms of a TermManager. Rebuilt terms go
// through the simplifying builders, so they need not be structurally
// identical to the originals, but they are equisatisfiable, which is what
// `adlsym replay` checks.
#pragma once

#include <string>
#include <string_view>
#include <vector>

#include "smt/term.h"

namespace adlsym::obs {

struct SmtScript {
  /// One width-1 term per (assert ...) line, in script order.
  std::vector<smt::TermRef> asserts;
  bool sawCheckSat = false;
};

/// Parse a script produced by smt::toSmtLib. Variables are created in
/// `tm` with their declared widths. Throws adlsym::Error on any syntax
/// the printer cannot have produced (unknown operator, undeclared
/// variable, width > 64, truncated input).
SmtScript parseSmtLib(smt::TermManager& tm, std::string_view text);

}  // namespace adlsym::obs
