#include "obs/querylog.h"

#include <cstdio>
#include <filesystem>
#include <fstream>

#include "smt/printer.h"
#include "support/error.h"
#include "support/fault.h"
#include "support/json.h"

namespace adlsym::obs {

namespace fs = std::filesystem;

QueryLogger::QueryLogger(std::string dir) : dir_(std::move(dir)) {
  std::error_code ec;
  fs::create_directories(dir_, ec);
  if (ec) {
    throw InputError("query-log: cannot create directory '" + dir_ +
                     "': " + ec.message());
  }
}

void QueryLogger::onStepBegin(uint64_t node, const core::MachineState& st) {
  originNode_ = node;
  originPc_ = st.pc;
}

void QueryLogger::onCheck(const std::vector<smt::TermRef>& permanent,
                          const std::vector<smt::TermRef>& assumptions,
                          smt::CheckResult result, uint64_t micros,
                          bool cached) {
  fault::hit("obs.write");
  char stem[32];
  std::snprintf(stem, sizeof stem, "q%06llu",
                static_cast<unsigned long long>(seq_));

  std::vector<smt::TermRef> asserts = permanent;
  asserts.insert(asserts.end(), assumptions.begin(), assumptions.end());

  const std::string smtPath = dir_ + "/" + stem + ".smt2";
  {
    std::ofstream os(smtPath, std::ios::trunc);
    if (!os) throw InputError("query-log: cannot write '" + smtPath + "'");
    os << smt::toSmtLib(asserts);
  }

  const std::string metaPath = dir_ + "/" + stem + ".json";
  std::ofstream os(metaPath, std::ios::trunc);
  if (!os) throw InputError("query-log: cannot write '" + metaPath + "'");
  json::Writer w(os);
  w.beginObject();
  w.kv("schema", "adlsym-query-v1");
  w.kv("seq", seq_);
  w.kv("file", std::string_view(std::string(stem) + ".smt2"));
  w.kv("origin_pc", originPc_);
  w.kv("origin_node", originNode_);
  w.kv("verdict", smt::checkResultName(result));
  w.kv("micros", micros);
  w.kv("cached", cached);
  w.kv("assumptions", static_cast<uint64_t>(assumptions.size()));
  w.endObject();
  os << '\n';

  ++seq_;
}

}  // namespace adlsym::obs
