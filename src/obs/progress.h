// Live progress heartbeat (docs/observability.md): an ExploreObserver
// that periodically reports frontier size, finished paths, step
// throughput, coverage (count and percent of decodable code pcs), the
// solver's share of wall time, the query-cache hit rate, the stepped
// state's fork depth and the frontier's resident bytes — one
// "[progress] ..." line on a stream (the CLI points it at stderr) and,
// when the telemetry bundle has a trace sink, one Heartbeat trace event.
// When an EventBus is attached, every beat is also emitted as a heartbeat
// event on the stream, so --progress and --events always agree.
// Time comes from the injectable telemetry clock, so tests drive it with
// a ManualClock and never sleep.
#pragma once

#include <cstdint>
#include <mutex>
#include <ostream>

#include "core/observer.h"
#include "support/telemetry.h"

namespace adlsym::obs {

class EventBus;  // obs/events.h

class ProgressMeter final : public core::ExploreObserver {
 public:
  /// Emits at most one beat per `intervalSeconds` of clock time, checked
  /// after every step. `tel` may be null (system clock, no trace events);
  /// `os` is borrowed and must outlive the meter. `bus` (optional, also
  /// borrowed) receives one heartbeat event per beat; `codePcs` is the
  /// coverage-percent denominator (0 = unknown, percent omitted).
  ProgressMeter(telemetry::Telemetry* tel, std::ostream& os,
                double intervalSeconds = 1.0, EventBus* bus = nullptr,
                uint64_t codePcs = 0);

  /// Thread-safe: parallel exploration workers report steps concurrently
  /// (an internal mutex serializes clock reads, state and the stream).
  void onStepEnd(const StepInfo& info) override;

  uint64_t beats() const {
    std::lock_guard<std::mutex> lk(mu_);
    return beats_;
  }

 private:
  mutable std::mutex mu_;
  telemetry::Telemetry* tel_;
  std::ostream& os_;
  EventBus* bus_;
  uint64_t codePcs_;
  uint64_t intervalMicros_;
  uint64_t startMicros_ = 0;
  uint64_t lastBeatMicros_ = 0;
  uint64_t lastBeatSteps_ = 0;
  bool started_ = false;
  uint64_t beats_ = 0;
};

}  // namespace adlsym::obs
