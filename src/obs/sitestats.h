// Per-opcode and per-branch-site accounting for the stats document
// (docs/observability.md, adlsym-stats-v8): an ExploreObserver that
// decodes every executed pc through the loaded ADL model and counts
// executions per mnemonic, plus a per-pc table of fork/infeasible events
// — the branch sites that actually split or killed paths. The decoder
// caches by address, so the per-step cost after warm-up is one hash
// lookup.
#pragma once

#include <cstdint>
#include <map>
#include <mutex>
#include <string>

#include "core/observer.h"
#include "decode/decoder.h"

namespace adlsym::json {
class Writer;
struct Value;
}

namespace adlsym::obs {

class SiteStatsCollector final : public core::ExploreObserver {
 public:
  SiteStatsCollector(const adl::ArchModel& model, const loader::Image& image)
      : image_(image), decoder_(model) {}

  /// Thread-safe: parallel exploration workers report steps and drops
  /// concurrently (an internal mutex guards the decoder cache and both
  /// tables). Counts are order-independent sums over std::maps, so the
  /// JSON is identical across --jobs values.
  void onStepEnd(const StepInfo& info) override;
  void onDrop(uint64_t node, uint64_t pc) override;

  struct Site {
    uint64_t hits = 0;        // times the instruction executed
    uint64_t forks = 0;       // steps yielding >1 successor
    uint64_t infeasible = 0;  // steps yielding 0 successors (drops)
  };

  const std::map<std::string, uint64_t>& opcodeCounts() const {
    return opcodes_;
  }
  const std::map<uint64_t, Site>& sites() const { return sites_; }

  /// Append the "opcodes" object and "branch_sites" array to an open JSON
  /// object (the v2 stats document).
  void writeJson(json::Writer& w) const;

  /// Full-state serialization for checkpoints (adlsym-ckpt-v1): unlike
  /// writeJson this includes hit-only sites, so a resumed run's final
  /// stats document is byte-identical to the uninterrupted run's.
  void writeCkptJson(json::Writer& w) const;

  /// Fold a parsed writeCkptJson() section in (--resume baseline).
  /// Throws InputError on malformed input.
  void restoreFromCkpt(const json::Value& v);

 private:
  mutable std::mutex mu_;
  const loader::Image& image_;
  decode::Decoder decoder_;
  std::map<std::string, uint64_t> opcodes_;  // mnemonic -> executions
  std::map<uint64_t, Site> sites_;           // pc -> events
};

}  // namespace adlsym::obs
