#include "obs/smtlib.h"

#include <cctype>
#include <unordered_map>

#include "support/error.h"

namespace adlsym::obs {

namespace {

using smt::TermManager;
using smt::TermRef;

// ---- tokenizer -----------------------------------------------------------

struct Lexer {
  std::string_view text;
  size_t pos = 0;

  void skipSpace() {
    while (pos < text.size()) {
      const char c = text[pos];
      if (c == ';') {  // comment to end of line
        while (pos < text.size() && text[pos] != '\n') ++pos;
      } else if (std::isspace(static_cast<unsigned char>(c))) {
        ++pos;
      } else {
        break;
      }
    }
  }

  bool atEnd() {
    skipSpace();
    return pos >= text.size();
  }

  /// Next token: "(", ")" or an atom (maximal run of non-space,
  /// non-paren characters). Throws at end of input.
  std::string_view next() {
    skipSpace();
    if (pos >= text.size()) throw Error("smtlib: unexpected end of input");
    const char c = text[pos];
    if (c == '(' || c == ')') {
      ++pos;
      return text.substr(pos - 1, 1);
    }
    const size_t start = pos;
    while (pos < text.size()) {
      const char d = text[pos];
      if (d == '(' || d == ')' ||
          std::isspace(static_cast<unsigned char>(d))) {
        break;
      }
      ++pos;
    }
    return text.substr(start, pos - start);
  }

  std::string_view peek() {
    const size_t save = pos;
    const std::string_view t = next();
    pos = save;
    return t;
  }

  void expect(std::string_view tok) {
    const std::string_view got = next();
    if (got != tok) {
      throw Error("smtlib: expected '" + std::string(tok) + "', got '" +
                  std::string(got) + "'");
    }
  }
};

uint64_t parseUnsigned(std::string_view s) {
  if (s.empty()) throw Error("smtlib: expected a number");
  uint64_t v = 0;
  for (const char c : s) {
    if (c < '0' || c > '9')
      throw Error("smtlib: bad number '" + std::string(s) + "'");
    v = v * 10 + static_cast<uint64_t>(c - '0');
  }
  return v;
}

// ---- expressions ---------------------------------------------------------

struct Parser {
  TermManager& tm;
  Lexer lex;
  std::unordered_map<std::string, TermRef> vars;

  TermRef atom(std::string_view tok) {
    if (tok.size() > 2 && tok[0] == '#') {
      const std::string_view digits = tok.substr(2);
      uint64_t v = 0;
      unsigned width = 0;
      if (tok[1] == 'x') {
        width = static_cast<unsigned>(digits.size()) * 4;
        for (const char c : digits) {
          unsigned nib;
          if (c >= '0' && c <= '9') nib = static_cast<unsigned>(c - '0');
          else if (c >= 'a' && c <= 'f') nib = static_cast<unsigned>(c - 'a') + 10;
          else if (c >= 'A' && c <= 'F') nib = static_cast<unsigned>(c - 'A') + 10;
          else throw Error("smtlib: bad hex constant '" + std::string(tok) + "'");
          v = (v << 4) | nib;
        }
      } else if (tok[1] == 'b') {
        width = static_cast<unsigned>(digits.size());
        for (const char c : digits) {
          if (c != '0' && c != '1')
            throw Error("smtlib: bad binary constant '" + std::string(tok) + "'");
          v = (v << 1) | static_cast<uint64_t>(c - '0');
        }
      } else {
        throw Error("smtlib: bad constant '" + std::string(tok) + "'");
      }
      if (width == 0 || width > 64)
        throw Error("smtlib: constant width out of range in '" +
                    std::string(tok) + "'");
      return tm.mkConst(width, v);
    }
    const auto it = vars.find(std::string(tok));
    if (it == vars.end())
      throw Error("smtlib: undeclared variable '" + std::string(tok) + "'");
    return it->second;
  }

  TermRef expr() {
    const std::string_view tok = lex.next();
    if (tok != "(") return atom(tok);

    // "(" — either an operator application or ((_ extract hi lo) t).
    std::string_view head = lex.next();
    if (head == "(") {
      lex.expect("_");
      lex.expect("extract");
      const uint64_t hi = parseUnsigned(lex.next());
      const uint64_t lo = parseUnsigned(lex.next());
      lex.expect(")");
      const TermRef t = expr();
      lex.expect(")");
      return tm.mkExtract(t, static_cast<unsigned>(hi),
                          static_cast<unsigned>(lo));
    }

    std::vector<TermRef> ops;
    while (lex.peek() != ")") ops.push_back(expr());
    lex.expect(")");
    return apply(head, ops);
  }

  TermRef apply(std::string_view op, const std::vector<TermRef>& a) {
    const auto unary = [&](TermRef (TermManager::*fn)(TermRef)) {
      need(op, a, 1);
      return (tm.*fn)(a[0]);
    };
    const auto binary = [&](TermRef (TermManager::*fn)(TermRef, TermRef)) {
      need(op, a, 2);
      return (tm.*fn)(a[0], a[1]);
    };

    if (op == "bvnot") return unary(&TermManager::mkNot);
    if (op == "bvneg") return unary(&TermManager::mkNeg);
    if (op == "bvand") return binary(&TermManager::mkAnd);
    if (op == "bvor") return binary(&TermManager::mkOr);
    if (op == "bvxor") return binary(&TermManager::mkXor);
    if (op == "bvadd") return binary(&TermManager::mkAdd);
    if (op == "bvsub") return binary(&TermManager::mkSub);
    if (op == "bvmul") return binary(&TermManager::mkMul);
    if (op == "bvudiv") return binary(&TermManager::mkUDiv);
    if (op == "bvurem") return binary(&TermManager::mkURem);
    if (op == "bvsdiv") return binary(&TermManager::mkSDiv);
    if (op == "bvsrem") return binary(&TermManager::mkSRem);
    if (op == "bvshl") return binary(&TermManager::mkShl);
    if (op == "bvlshr") return binary(&TermManager::mkLShr);
    if (op == "bvashr") return binary(&TermManager::mkAShr);
    if (op == "concat") return binary(&TermManager::mkConcat);
    if (op == "=") return binary(&TermManager::mkEq);
    if (op == "bvult") return binary(&TermManager::mkUlt);
    if (op == "bvule") return binary(&TermManager::mkUle);
    if (op == "bvslt") return binary(&TermManager::mkSlt);
    if (op == "bvsle") return binary(&TermManager::mkSle);
    if (op == "ite") {
      need(op, a, 3);
      return tm.mkIte(a[0], a[1], a[2]);
    }
    throw Error("smtlib: unknown operator '" + std::string(op) + "'");
  }

  static void need(std::string_view op, const std::vector<TermRef>& a,
                   size_t n) {
    if (a.size() != n) {
      throw Error("smtlib: operator '" + std::string(op) + "' expects " +
                  std::to_string(n) + " operands, got " +
                  std::to_string(a.size()));
    }
  }

  // ---- commands ----------------------------------------------------------

  SmtScript script() {
    SmtScript out;
    while (!lex.atEnd()) {
      lex.expect("(");
      const std::string_view cmd = lex.next();
      if (cmd == "set-logic") {
        lex.next();  // logic name, ignored
        lex.expect(")");
      } else if (cmd == "declare-const") {
        const std::string name(lex.next());
        lex.expect("(");
        lex.expect("_");
        lex.expect("BitVec");
        const uint64_t width = parseUnsigned(lex.next());
        lex.expect(")");
        lex.expect(")");
        if (width == 0 || width > 64)
          throw Error("smtlib: variable '" + name + "' width out of range");
        vars.emplace(name, tm.mkVar(static_cast<unsigned>(width), name));
      } else if (cmd == "assert") {
        const TermRef t = expr();
        lex.expect(")");
        if (t.width() != 1)
          throw Error("smtlib: assert of a term with width != 1");
        out.asserts.push_back(t);
      } else if (cmd == "check-sat") {
        lex.expect(")");
        out.sawCheckSat = true;
      } else {
        throw Error("smtlib: unknown command '" + std::string(cmd) + "'");
      }
    }
    return out;
  }
};

}  // namespace

SmtScript parseSmtLib(smt::TermManager& tm, std::string_view text) {
  Parser p{tm, Lexer{text, 0}, {}};
  return p.script();
}

}  // namespace adlsym::obs
