// Run manifests (docs/observability.md): the adlsym-run-v1 document
// written by `explore --manifest=<file>`. A manifest records the
// invocation (command, ISA, strategy, argv), the schema versions of the
// run's structured outputs, and every artifact the run produced with its
// SHA-256 content hash — so a results directory is self-verifying.
// `adlsym verify-run <manifest>` re-hashes the artifacts and replays the
// cross-artifact reconciliation identities (stats paths identity, 4-bucket
// query accounting, events-vs-stats agreement).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace adlsym::json {
struct Value;
}

namespace adlsym::obs {

class RunManifest {
 public:
  // Invocation metadata, filled by the CLI before write().
  std::string command;   // "explore" | "profile"
  std::string isa;
  std::string strategy;
  std::string program;   // image path as given (cosmetic)
  std::vector<std::string> argv;  // full invocation, argv[0] excluded
  std::string statsSchema = "adlsym-stats-v8";
  std::string eventsSchema = "adlsym-events-v1";

  /// Register an artifact the run wrote; hashed when the manifest itself
  /// is written (after the run, so the hash covers the final bytes).
  void addArtifact(const std::string& role, const std::string& path);

  bool empty() const { return artifacts_.empty(); }

  /// Render the adlsym-run-v1 JSON document, hashing every registered
  /// artifact now. Throws adlsym::InputError when an artifact is
  /// unreadable.
  std::string toJson() const;

  /// toJson() to a file. Throws adlsym::InputError when an artifact is
  /// unreadable or the manifest path is unwritable.
  void writeFile(const std::string& manifestPath) const;

 private:
  struct Entry {
    std::string role;
    std::string path;
  };
  std::vector<Entry> artifacts_;
};

/// The outcome of `adlsym verify-run`: per-artifact hash checks plus the
/// cross-artifact reconciliation results.
struct VerifyReport {
  struct ArtifactCheck {
    std::string role;
    std::string path;      // as recorded in the manifest
    std::string resolved;  // path actually hashed (may be manifest-relative)
    bool found = false;
    bool hashOk = false;
    uint64_t expectedBytes = 0;
    uint64_t actualBytes = 0;
    std::string expectedSha256;
    std::string actualSha256;
  };
  std::vector<ArtifactCheck> artifacts;
  /// Cross-artifact checks that ran (human-readable, for the report).
  std::vector<std::string> checks;
  /// Everything that failed: hash mismatches, missing artifacts, violated
  /// identities. Empty = the run verifies.
  std::vector<std::string> problems;

  bool ok() const { return problems.empty(); }
  std::string formatText() const;
};

/// Load an adlsym-run-v1 manifest, re-hash every artifact and replay the
/// cross-artifact reconciliation identities. Relative artifact paths are
/// tried as given first, then against the manifest's directory. Throws
/// adlsym::InputError when the manifest itself is unreadable or malformed.
VerifyReport verifyRun(const std::string& manifestPath);

}  // namespace adlsym::obs
