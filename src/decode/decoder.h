// Model-driven instruction decoder (DESIGN.md S4). Built from an ArchModel
// at load time: for each instruction the fixed-bit mask/match pair comes
// from the ADL encoding declaration. Variable-length ISAs are handled by
// trying candidate lengths longest-first (x86-style longest match), so a
// one-byte opcode can never shadow a longer instruction sharing its prefix.
// Decoded results are cached by address — code is immutable during
// exploration, so every pc is decoded at most once per run.
#pragma once

#include <cstdint>
#include <optional>
#include <unordered_map>
#include <vector>

#include "adl/model.h"
#include "loader/image.h"

namespace adlsym::decode {

struct DecodedInsn {
  const adl::InsnInfo* insn = nullptr;
  unsigned lengthBytes = 0;
  /// Operand field values, indexed like InsnInfo::operandFields.
  std::vector<uint64_t> operandValues;
  uint64_t raw = 0;  // the undecoded encoding word
};

class Decoder {
 public:
  explicit Decoder(const adl::ArchModel& model);

  /// Decode the instruction at `addr` from the image's concrete bytes.
  /// Returns nullptr for unmapped/unrecognized bytes (illegal instruction).
  const DecodedInsn* decodeAt(const loader::Image& image, uint64_t addr);

  /// Decode from a raw byte buffer (no caching); used by the disassembler
  /// and by decoder unit tests.
  std::optional<DecodedInsn> decodeBytes(const uint8_t* bytes, size_t len) const;

  void clearCache() { cache_.clear(); }
  size_t cacheSize() const { return cache_.size(); }

  struct Stats {
    uint64_t decodes = 0;
    uint64_t cacheHits = 0;
  };
  const Stats& stats() const { return stats_; }

 private:
  /// Assemble `len` bytes into an encoding word per the model's endianness.
  uint64_t bytesToWord(const uint8_t* bytes, unsigned len) const;

  const adl::ArchModel& model_;
  /// Candidate instructions grouped by length, longest first.
  std::vector<std::pair<unsigned, std::vector<const adl::InsnInfo*>>> byLength_;
  std::unordered_map<uint64_t, DecodedInsn> cache_;
  mutable Stats stats_;
};

}  // namespace adlsym::decode
