#include "decode/decoder.h"

#include <algorithm>

#include "support/bits.h"

namespace adlsym::decode {

Decoder::Decoder(const adl::ArchModel& model) : model_(model) {
  std::vector<unsigned> lengths;
  for (const auto& insn : model_.insns) {
    if (std::find(lengths.begin(), lengths.end(), insn.lengthBytes) == lengths.end())
      lengths.push_back(insn.lengthBytes);
  }
  std::sort(lengths.rbegin(), lengths.rend());  // longest first
  for (const unsigned len : lengths) {
    std::vector<const adl::InsnInfo*> group;
    for (const auto& insn : model_.insns) {
      if (insn.lengthBytes == len) group.push_back(&insn);
    }
    byLength_.emplace_back(len, std::move(group));
  }
}

uint64_t Decoder::bytesToWord(const uint8_t* bytes, unsigned len) const {
  uint64_t w = 0;
  if (model_.endianLittle) {
    for (unsigned i = 0; i < len; ++i) w |= static_cast<uint64_t>(bytes[i]) << (8 * i);
  } else {
    for (unsigned i = 0; i < len; ++i) w = (w << 8) | bytes[i];
  }
  return w;
}

std::optional<DecodedInsn> Decoder::decodeBytes(const uint8_t* bytes,
                                                size_t len) const {
  ++stats_.decodes;
  for (const auto& [groupLen, group] : byLength_) {
    if (groupLen > len) continue;
    const uint64_t word = bytesToWord(bytes, groupLen);
    for (const adl::InsnInfo* insn : group) {
      if ((word & insn->fixedMask) != insn->fixedMatch) continue;
      DecodedInsn d;
      d.insn = insn;
      d.lengthBytes = groupLen;
      d.raw = word;
      d.operandValues.reserve(insn->operandFields.size());
      for (const adl::EncFieldInfo* f : insn->operandFields) {
        d.operandValues.push_back(bitSlice(word, f->lo + f->width - 1, f->lo));
      }
      return d;
    }
  }
  return std::nullopt;
}

const DecodedInsn* Decoder::decodeAt(const loader::Image& image, uint64_t addr) {
  if (auto it = cache_.find(addr); it != cache_.end()) {
    ++stats_.cacheHits;
    return it->second.insn != nullptr ? &it->second : nullptr;
  }
  // Gather up to maxInsnBytes contiguous mapped bytes.
  uint8_t buf[8] = {};
  size_t avail = 0;
  for (; avail < model_.maxInsnBytes && avail < sizeof(buf); ++avail) {
    const auto b = image.byteAt(addr + avail);
    if (!b) break;
    buf[avail] = *b;
  }
  auto decoded = decodeBytes(buf, avail);
  auto [it, inserted] =
      cache_.emplace(addr, decoded ? std::move(*decoded) : DecodedInsn{});
  (void)inserted;
  return it->second.insn != nullptr ? &it->second : nullptr;
}

}  // namespace adlsym::decode
