#include "driver/session.h"

#include "baseline/rv32_engine.h"
#include "core/rtlc.h"
#include "isa/registry.h"

namespace adlsym::driver {

Session::Session(const std::string& isa, const std::string& asmSource,
                 SessionOptions opt)
    : opt_(opt) {
  model_ = isa::loadIsa(isa);

  DiagEngine diags(isa + ".s");
  asmgen::Assembler assembler(*model_);
  auto image = assembler.assemble(asmSource, diags);
  if (!image) {
    throw Error("assembly failed:\n" + diags.str());
  }
  image_ = std::move(*image);

  tm_.setRewritingEnabled(opt_.rewriting);
  solver_ = std::make_unique<smt::SmtSolver>(tm_);
  solver_->setConflictBudget(opt_.solverConflictBudget);
  solver_->setQueryTimeoutMicros(opt_.solverTimeoutMicros);
  solver_->setQueryCacheEnabled(opt_.queryCache);
  if (opt_.prefilter) {
    presolver_ = std::make_unique<smt::PreSolver>(tm_);
    solver_->setPreSolver(presolver_.get());
  }
  svc_ = std::make_unique<core::EngineServices>(tm_, *solver_, image_,
                                                opt_.engine, opt_.telemetry);
  if (opt_.useBaselineEngine) {
    check(isa == "rv32e", "baseline engine only exists for rv32e");
    exec_ = std::make_unique<baseline::Rv32Engine>(*svc_);
  } else if (opt_.engineKind == core::AdlEngineKind::Interp) {
    exec_ = std::make_unique<core::AdlExecutor>(*model_, *svc_);
  } else {
    exec_ = std::make_unique<core::BytecodeExecutor>(*model_, *svc_);
  }
}

std::unique_ptr<Session> Session::forPortable(const workloads::PProgram& p,
                                              const std::string& isa,
                                              SessionOptions opt) {
  return std::make_unique<Session>(isa, workloads::emitAssembly(p, isa), opt);
}

core::ExploreSummary Session::explore() {
  core::Explorer explorer(*exec_, *svc_, opt_.explorer);
  return explorer.run();
}

core::ConcolicResult Session::concolic(core::ConcolicConfig cfg) {
  core::ConcolicDriver driver(*exec_, *svc_, cfg);
  return driver.run();
}

core::ConcreteResult Session::replay(const core::TestCase& tc,
                                     uint64_t maxSteps) {
  core::ConcreteRunner runner(*model_, image_, opt_.telemetry);
  return runner.run(tc, maxSteps);
}

}  // namespace adlsym::driver
