// Session: the library's top-level convenience API. One Session owns the
// whole pipeline for one program on one ISA — ADL model, assembled image,
// term manager, SMT solver, engine — and runs exploration / concrete
// replay on it. Examples, tests and benches all start here; see
// examples/quickstart.cpp for the canonical usage.
#pragma once

#include <memory>
#include <string>

#include "adl/model.h"
#include "asmgen/assembler.h"
#include "core/concolic.h"
#include "core/concrete.h"
#include "core/evaluator.h"
#include "core/explorer.h"
#include "loader/image.h"
#include "smt/presolver.h"
#include "smt/solver.h"
#include "support/telemetry.h"
#include "workloads/pgen.h"

namespace adlsym::driver {

struct SessionOptions {
  core::EngineConfig engine;
  core::ExplorerConfig explorer;
  /// Use the hand-written baseline engine instead of the ADL evaluator
  /// (rv32e only; the E2 comparison).
  bool useBaselineEngine = false;
  /// ADL execution engine: the load-time bytecode compiler (core/rtlc.h,
  /// the default) or the tree-walking reference interpreter. Ignored when
  /// useBaselineEngine is set. See docs/bytecode.md.
  core::AdlEngineKind engineKind = core::AdlEngineKind::Bytecode;
  /// Disable the term rewriter (E4 ablation).
  bool rewriting = true;
  /// Disable the solver's query cache (E4 ablation).
  bool queryCache = true;
  /// Abstract-interpretation pre-solver in front of bit-blasting
  /// (smt/presolver.h, docs/absdomain.md). On by default; --prefilter=off
  /// and the bench ablations switch it off.
  bool prefilter = true;
  /// SAT conflict budget per solver query (0 = unlimited).
  uint64_t solverConflictBudget = 500000;
  /// Wall deadline per solver query in microseconds (0 = unlimited),
  /// measured on the telemetry clock when one is attached. Layered on the
  /// conflict budget; an expired query returns Unknown (docs/robustness.md).
  uint64_t solverTimeoutMicros = 0;
  /// Observability bundle (metrics registry + clock + optional trace
  /// sink), attached to every layer of the session. Not owned; null =
  /// telemetry disabled at zero cost (docs/observability.md).
  telemetry::Telemetry* telemetry = nullptr;
};

class Session {
 public:
  /// Assemble `asmSource` for the shipped ISA `isa` and prepare an engine.
  /// Throws adlsym::Error on assembly or model errors (message includes
  /// the assembler diagnostics).
  Session(const std::string& isa, const std::string& asmSource,
          SessionOptions opt = {});

  /// Lower a portable program for `isa` first, then assemble it.
  static std::unique_ptr<Session> forPortable(const workloads::PProgram& p,
                                              const std::string& isa,
                                              SessionOptions opt = {});

  /// Run symbolic exploration from the entry point.
  core::ExploreSummary explore();

  /// Run concolic generational search instead (one concrete path per
  /// iteration, branch negation for new seeds). Uses the same executor;
  /// disabling `engine.eagerFeasibility` in the options avoids redundant
  /// solver work in this mode.
  core::ConcolicResult concolic(core::ConcolicConfig cfg = {});

  /// Replay a witness concretely with the same semantics.
  core::ConcreteResult replay(const core::TestCase& tc,
                              uint64_t maxSteps = 100000);

  const adl::ArchModel& model() const { return *model_; }
  const loader::Image& image() const { return image_; }
  smt::TermManager& termManager() { return tm_; }
  smt::SmtSolver& solver() { return *solver_; }
  core::Executor& executor() { return *exec_; }
  /// The engine-services bundle the executor runs against; lets callers
  /// build their own Explorer over this session (e.g. to attach an
  /// ExploreObserver, which ExplorerConfig carries by pointer).
  core::EngineServices& services() { return *svc_; }
  const SessionOptions& options() const { return opt_; }
  /// The telemetry bundle this session records into (null when detached).
  telemetry::Telemetry* telemetry() const { return opt_.telemetry; }

 private:
  SessionOptions opt_;
  std::unique_ptr<adl::ArchModel> model_;
  loader::Image image_;
  smt::TermManager tm_;
  std::unique_ptr<smt::SmtSolver> solver_;
  std::unique_ptr<smt::PreSolver> presolver_;  // attached when opt.prefilter
  std::unique_ptr<core::EngineServices> svc_;
  std::unique_ptr<core::Executor> exec_;
};

}  // namespace adlsym::driver
