// Implementation of the `adlsym` command-line tool's subcommands, kept in
// the library so they are unit-testable (tests/cli_test.cpp). The tool
// binary (tools/adlsym.cpp) only parses argv and dispatches here.
#pragma once

#include <string>
#include <vector>

namespace adlsym::driver::cli {

struct CommandResult {
  int exitCode = 0;
  std::string output;  // printed to stdout by the tool
};

/// `adlsym isas` — list shipped ISAs with their model statistics.
CommandResult cmdIsas();

/// `adlsym model <isa>` — dump an ISA's storage, encodings and
/// instruction table (mask/match, operands, syntax).
CommandResult cmdModel(const std::string& isa);

/// `adlsym asm <isa> <source-text>` — assemble to the textual image
/// format (docs/image-format.md).
CommandResult cmdAsm(const std::string& isa, const std::string& source);

/// `adlsym disasm <isa> <image-text>` — disassemble every section that
/// decodes as code.
CommandResult cmdDisasm(const std::string& isa, const std::string& imageText);

struct RunOptions {
  /// Write the aggregated JSON stats document here ("" = off).
  std::string statsJsonPath;
  /// Stream JSONL trace events here ("" = off).
  std::string tracePath;
};

/// `adlsym run <isa> <image-text> [inputs...]` — concrete execution with
/// the given input stream; prints outputs and exit status.
CommandResult cmdRun(const std::string& isa, const std::string& imageText,
                     const std::vector<uint64_t>& inputs,
                     const RunOptions& ropt = {});

struct LintOptions {
  bool json = false;    // --format=json: the adlsym-lint-v1 document
  bool werror = false;  // --werror: warnings also fail the exit code
  /// Optional image text to run the IMG0xx passes over ("" = model only).
  std::string imageText;
  /// Write the aggregated JSON stats document (finding counts + per-pass
  /// timing histograms lint.*_us) here ("" = off).
  std::string statsJsonPath;
};

/// `adlsym lint <isa|file.adl> [file.img]` — run the specification
/// verifier (decode-space + dataflow lints, docs/linting.md) and, when an
/// image is given, static CFG analysis. Exit code 1 on error-severity
/// findings (or warnings under --werror).
CommandResult cmdLint(const std::string& subject, const std::string& adlSource,
                      const LintOptions& opt = {});

struct ExploreOptions {
  std::string strategy = "dfs";  // dfs|bfs|random|coverage
  uint64_t maxPaths = 10000;
  uint64_t maxTotalSteps = 1000000;
  bool stopAtFirstDefect = false;
  bool mergeStates = false;
  /// Append an annotated instruction-coverage report per code section.
  bool coverageReport = false;
  /// Run the lint passes (model + image) first; error findings abort.
  bool lint = false;
  /// Write the aggregated JSON stats document (summary + solver + metrics
  /// + opcode/branch-site tables, docs/observability.md) here ("" = off).
  std::string statsJsonPath;
  /// Stream JSONL trace events here ("" = off).
  std::string tracePath;
  /// Write the adlsym-pathforest-v1 JSON document here ("" = off).
  std::string pathForestPath;
  /// Write the path forest as Graphviz DOT here ("" = off).
  std::string pathDotPath;
  /// Capture every solver query as an SMT-LIB corpus into this directory
  /// ("" = off); replay with `adlsym replay <dir>`.
  std::string queryLogDir;
  /// Emit a progress heartbeat to stderr every N seconds (0 = off).
  double progressSeconds = 0.0;

  // ---- resource governor (docs/robustness.md) ------------------------
  /// Frontier cap with strategy-aware eviction (0 = unbounded).
  uint64_t maxFrontier = 0;
  /// Approximate state+term byte budget in MiB (0 = unbounded).
  uint64_t memBudgetMb = 0;
  /// Per-query solver deadline in milliseconds (0 = unlimited).
  uint64_t solverTimeoutMs = 0;
  /// Whole-run wall budget in milliseconds (0 = unlimited); also bounds
  /// in-flight solver queries via the shared deadline.
  uint64_t maxWallMs = 0;
  /// Fault-injection schedule ("" = none), e.g. "solver.check:1"
  /// (support/fault.h); armed for this command only.
  std::string injectSpec;
  /// Run on a deterministic ManualClock advancing this many microseconds
  /// per read (0 = system clock). Makes --stats-json byte-reproducible.
  uint64_t manualClockStepUs = 0;

  // ---- parallel exploration (docs/parallelism.md) --------------------
  /// Worker threads for the parallel engine (0 = the sequential
  /// explorer; 1..64 = core::ParallelExplorer). With --clock=manual the
  /// stats JSON, path forest and generated test inputs are byte-identical
  /// across every jobs value. Incompatible with --merge and --query-log.
  uint64_t jobs = 0;
  /// Shared SMT query cache for the parallel engine (--qcache=on|off|N).
  /// Ignored by the sequential explorer, which has its own per-solver
  /// cache.
  bool qcacheOn = true;
  /// Cache entry capacity; 0 = unbounded (the deterministic default —
  /// a binding capacity makes hit counts depend on scheduling).
  uint64_t qcacheCapacity = 0;
  /// Abstract-interpretation pre-solver in front of bit-blasting
  /// (--prefilter=on|off, docs/absdomain.md). Applies to both engines;
  /// per-worker in the parallel engine (shared-nothing).
  bool prefilterOn = true;
  /// ADL execution engine (--engine=bytecode|interp): the load-time RTL
  /// bytecode compiler with superblock fusing (default) or the
  /// tree-walking reference interpreter. Artifacts are byte-identical
  /// between the two (docs/bytecode.md).
  std::string engine = "bytecode";

  // ---- profiler (docs/observability.md) ------------------------------
  /// Write the adlsym-profile-v2 cost-attribution document here ("" =
  /// off). Byte-identical across --jobs values under --clock=manual.
  std::string profilePath;
  /// Write collapsed-stack lines for flamegraph tooling here ("" = off).
  std::string profileFoldedPath;
  /// Print the human-readable profile tables after the path table (the
  /// `adlsym profile` command sets this).
  bool profileStdout = false;
  /// Program label recorded in the profile document (the image path as
  /// given on the command line; cosmetic only).
  std::string programLabel;

  // ---- flight recorder (docs/observability.md) -----------------------
  /// Stream the adlsym-events-v1 JSONL event stream here ("" = off;
  /// "-" = stdout). The deterministic event *set* is identical across
  /// --jobs values under --clock=manual (tools/events_canon).
  std::string eventsPath;
  /// Emit one self-describing snapshot event after every N step events
  /// (0 = never).
  uint64_t eventsSnapshotEvery = 1000;
  /// Write the adlsym-run-v1 manifest (every artifact with its SHA-256,
  /// obs/manifest.h) here after the run ("" = off); check with
  /// `adlsym verify-run`.
  std::string manifestPath;
  /// Full invocation (argv[0] excluded), echoed into the manifest.
  std::vector<std::string> argvEcho;

  // ---- crash-safe checkpointing (docs/robustness.md) -----------------
  /// Write an adlsym-ckpt-v1 checkpoint here ("" = off): at every level
  /// barrier (--checkpoint-every), on graceful SIGINT/SIGTERM stop, and
  /// at run end. Requires --clock=manual (the kill/resume byte-identity
  /// contract is defined on the deterministic clock) and routes to the
  /// parallel engine (--jobs defaults to 1 when not given).
  std::string checkpointPath;
  /// Checkpoint cadence in per-path steps: a checkpoint is written every
  /// time all live states reach the next multiple (a level barrier, so
  /// checkpoint *content* is byte-identical across --jobs values).
  /// 0 = only the stop/final checkpoints.
  uint64_t checkpointEverySteps = 0;
  /// Resume exploration from this checkpoint file ("" = off). The run
  /// identity (ISA, strategy, RNG seed, image hash) must match the
  /// checkpointed run, and the remaining flags must be repeated verbatim
  /// for the byte-identity contract to hold.
  std::string resumePath;
};

/// `adlsym explore <isa> <image-text>` — symbolic exploration; prints the
/// path table with witnesses and the engine statistics. `adlsym profile`
/// dispatches here too with opt.profileStdout set: same exploration, plus
/// the deterministic cost-attribution tables (obs/profile.h).
CommandResult cmdExplore(const std::string& isa, const std::string& imageText,
                         const ExploreOptions& opt);

/// `adlsym replay <query-dir>` — re-solve a captured query corpus
/// (explore --query-log) and diff verdicts; exit 1 on any mismatch,
/// unreadable entry or empty corpus.
CommandResult cmdReplay(const std::string& dir);

struct TailOptions {
  /// Keep polling the file for new events until run_end (the default);
  /// --no-follow renders the current contents once and returns.
  bool follow = true;
  /// Poll interval while following, in seconds.
  double pollSeconds = 0.2;
  /// Give up following after this many seconds without a run_end
  /// (0 = never). Keeps CI invocations from hanging on a dead stream.
  double maxWaitSeconds = 0.0;
};

/// `adlsym tail <events-file>` — live terminal inspector over an
/// adlsym-events-v1 stream (file or fifo): renders the run dashboard,
/// redrawing as events arrive, until run_end. Exit 2 on a malformed
/// stream.
CommandResult cmdTail(const std::string& eventsPath, const TailOptions& opt);

/// `adlsym events summarize <events-file> [--stats=<stats.json>]` —
/// recompute the run's counters from the stream, check every
/// reconciliation identity, and (with --stats) cross-check against the
/// adlsym-stats-v8 document. Exit 1 when any identity fails.
CommandResult cmdEventsSummarize(const std::string& eventsPath,
                                 const std::string& statsJsonPath);

/// `adlsym verify-run <manifest>` — re-hash every artifact recorded in an
/// adlsym-run-v1 manifest and replay the cross-artifact reconciliation
/// identities. Exit 1 on any mismatch, 2 on a malformed manifest.
CommandResult cmdVerifyRun(const std::string& manifestPath);

/// Top-level dispatcher used by the tool binary: args exclude argv[0].
/// File arguments are read from disk here. This is the process's single
/// error boundary — adlsym::Error, std::bad_alloc and injected faults all
/// become diagnostics with a documented exit code (docs/robustness.md):
///   0  success
///   1  findings: defects found, lint errors, replay mismatches,
///      abnormal concrete run
///   2  bad input: usage errors, unknown ISA/option, unreadable or
///      malformed files, unwritable output paths
///   3  partial results: exploration truncated by a resource budget
///   4  internal error: engine invariant failure, out of memory,
///      injected fault
/// The ADLSYM_FAULTS environment variable arms a fault-injection schedule
/// for any command (same syntax as explore --inject, support/fault.h).
CommandResult dispatch(const std::vector<std::string>& args);

/// Usage text.
std::string usage();

}  // namespace adlsym::driver::cli
