#include "driver/cli.h"

#include <algorithm>
#include <chrono>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <memory>
#include <sstream>
#include <thread>

#include "analysis/lint.h"
#include "asmgen/assembler.h"
#include "asmgen/disasm.h"
#include "core/checkpoint.h"
#include "core/pexplorer.h"
#include "core/rtlc.h"
#include "core/rtlprofile.h"
#include "core/testgen.h"
#include "decode/decoder.h"
#include "driver/session.h"
#include "isa/registry.h"
#include "obs/events.h"
#include "obs/manifest.h"
#include "obs/pathforest.h"
#include "obs/profile.h"
#include "obs/progress.h"
#include "obs/querylog.h"
#include "obs/replay.h"
#include "obs/sitestats.h"
#include "smt/presolver.h"
#include "smt/qcache.h"
#include "support/atomicio.h"
#include "support/error.h"
#include "support/fault.h"
#include "support/hash.h"
#include "support/json.h"
#include "support/strings.h"
#include "support/telemetry.h"

namespace adlsym::driver::cli {

namespace {

/// Bad input (usage, unknown names, malformed values): exit code 2, per
/// the exit-code table in docs/robustness.md.
CommandResult fail(std::string msg) {
  return CommandResult{2, std::move(msg) + "\n"};
}

/// Per-command telemetry plumbing for the --stats-json / --trace flags:
/// owns the bundle, the trace file and its JSONL sink. `get()` is null
/// when neither flag was given (and no manual clock was requested), so
/// the engine stays on its zero-cost path.
class CommandTelemetry {
 public:
  /// Throws adlsym::InputError when the trace file cannot be opened.
  /// `manualClockStepUs` > 0 swaps the system clock for a ManualClock so
  /// every recorded duration is deterministic (byte-identical stats
  /// documents across runs).
  CommandTelemetry(const std::string& statsJsonPath,
                   const std::string& tracePath,
                   uint64_t manualClockStepUs = 0)
      : statsJsonPath_(statsJsonPath) {
    if (manualClockStepUs != 0) {
      clock_ = std::make_unique<telemetry::ManualClock>(manualClockStepUs);
      tel_ = std::make_unique<telemetry::Telemetry>(*clock_);
    } else if (!statsJsonPath.empty() || !tracePath.empty()) {
      tel_ = std::make_unique<telemetry::Telemetry>();
    }
    if (!tracePath.empty()) {
      traceFile_.open(tracePath, std::ios::binary | std::ios::trunc);
      if (!traceFile_) {
        throw InputError("cannot open trace file '" + tracePath + "'");
      }
      sink_ = std::make_unique<telemetry::JsonlTraceSink>(traceFile_);
      tel_->setSink(sink_.get());
    }
  }

  telemetry::Telemetry* get() { return tel_.get(); }
  bool wantsStatsJson() const { return !statsJsonPath_.empty(); }
  /// Non-null iff --clock=manual: --resume advances it to the
  /// checkpoint's recorded clock position before any component reads it.
  telemetry::ManualClock* manualClock() { return clock_.get(); }

  /// Write the aggregated stats document. `writeBody` fills the
  /// command-specific objects of the already-open top-level object.
  template <typename Fn>
  void writeStatsJson(const std::string& command, const std::string& isa,
                      Fn writeBody) {
    if (statsJsonPath_.empty()) return;
    fault::hit("obs.write");
    std::ofstream out(statsJsonPath_, std::ios::binary | std::ios::trunc);
    if (!out) {
      throw InputError("cannot open stats file '" + statsJsonPath_ + "'");
    }
    json::Writer w(out);
    w.beginObject();
    w.kv("schema", "adlsym-stats-v8");
    w.kv("command", std::string_view(command));
    w.kv("isa", std::string_view(isa));
    writeBody(w);
    w.key("metrics");
    tel_->metrics().writeJson(w);
    w.endObject();
    out << '\n';
  }

  void finish() {
    if (sink_) sink_->flush();
  }

 private:
  std::string statsJsonPath_;
  std::unique_ptr<telemetry::ManualClock> clock_;
  std::unique_ptr<telemetry::Telemetry> tel_;
  std::ofstream traceFile_;
  std::unique_ptr<telemetry::JsonlTraceSink> sink_;
};

loader::Image parseImageArg(const std::string& imageText) {
  return loader::Image::deserialize(imageText);
}

std::string readFileOrThrow(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw InputError("cannot open file '" + path + "'");
  std::ostringstream os;
  os << in.rdbuf();
  return os.str();
}

/// Writes the --profile / --profile-folded artifacts; returns an error
/// message ("" on success) so cmdExplore maps it to exit code 2.
std::string writeProfileArtifacts(const obs::ProfileReport& rep,
                                  const ExploreOptions& opt) {
  if (!opt.profilePath.empty()) {
    fault::hit("obs.write");
    std::ofstream out(opt.profilePath, std::ios::binary | std::ios::trunc);
    if (!out) return "cannot open profile file '" + opt.profilePath + "'";
    rep.writeJson(out);
  }
  if (!opt.profileFoldedPath.empty()) {
    fault::hit("obs.write");
    std::ofstream out(opt.profileFoldedPath,
                      std::ios::binary | std::ios::trunc);
    if (!out) {
      return "cannot open profile-folded file '" + opt.profileFoldedPath + "'";
    }
    rep.writeFolded(out);
  }
  return "";
}

/// Decodable instruction count over the image's non-writable sections —
/// the coverage-percent denominator for heartbeats and snapshot events
/// (the same decoder walk `--coverage` renders).
uint64_t countCodePcs(const adl::ArchModel& model, const loader::Image& image) {
  decode::Decoder decoder(model);
  uint64_t total = 0;
  for (const loader::Section& s : image.sections()) {
    if (s.writable) continue;
    uint64_t addr = s.base;
    while (addr < s.end()) {
      const decode::DecodedInsn* d = decoder.decodeAt(image, addr);
      if (d == nullptr) {
        ++addr;
        continue;
      }
      ++total;
      addr += d->lengthBytes;
    }
  }
  return total;
}

/// --events / --manifest plumbing shared by both engine paths: owns the
/// event stream file and the flight recorder, and assembles the run
/// manifest at the end.
struct FlightRecorder {
  std::ofstream file;
  std::unique_ptr<obs::EventBus> bus;
  uint64_t codePcs = 0;

  /// Throws adlsym::InputError when the events file cannot be opened.
  /// `append` (--resume) keeps the spliced stream prefix and continues
  /// after it instead of truncating.
  void open(const ExploreOptions& opt, const adl::ArchModel& model,
            const loader::Image& image, telemetry::Telemetry* tel,
            bool append = false) {
    if (opt.eventsPath.empty() && opt.manifestPath.empty() &&
        opt.progressSeconds <= 0.0) {
      return;
    }
    codePcs = countCodePcs(model, image);
    if (opt.eventsPath.empty()) return;
    std::ostream* os = &std::cout;
    if (opt.eventsPath != "-") {
      fault::hit("obs.write");
      file.open(opt.eventsPath, std::ios::binary |
                                    (append ? std::ios::app : std::ios::trunc));
      if (!file) {
        throw InputError("cannot open events file '" + opt.eventsPath + "'");
      }
      os = &file;
    }
    obs::EventBusOptions bopt;
    bopt.snapshotEverySteps = opt.eventsSnapshotEvery;
    bopt.maxFrontier = opt.maxFrontier;
    bopt.memBudgetBytes = opt.memBudgetMb * 1024 * 1024;
    bopt.codePcs = codePcs;
    bus = std::make_unique<obs::EventBus>(*os, tel, bopt);
  }

  void runBegin(const std::string& isaName, const ExploreOptions& opt) {
    if (!bus) return;
    obs::EventBus::RunMeta rm;
    rm.command = opt.profileStdout ? "profile" : "explore";
    rm.isa = isaName;
    rm.strategy = opt.strategy;
    rm.program = opt.programLabel;
    bus->runBegin(rm);
  }

  /// Close the stream so the manifest hashes the final bytes.
  void close() {
    if (bus) bus->flush();
    if (file.is_open()) file.close();
  }

  /// The stats document's "events" block (always present for explore:
  /// {"enabled":false} when the recorder is off).
  void writeStatsJson(json::Writer& w) const {
    w.key("events");
    if (bus) {
      bus->writeStatsJson(w);
    } else {
      w.beginObject();
      w.kv("enabled", false);
      w.endObject();
    }
  }
};

/// Write the adlsym-run-v1 manifest recording every artifact this run
/// produced. Called after all artifact streams are closed; throws
/// adlsym::InputError (exit 2) when an artifact is unreadable or the
/// manifest path is unwritable.
void writeRunManifest(const std::string& isaName, const ExploreOptions& opt) {
  if (opt.manifestPath.empty()) return;
  fault::hit("obs.write");
  obs::RunManifest man;
  man.command = opt.profileStdout ? "profile" : "explore";
  man.isa = isaName;
  man.strategy = opt.strategy;
  man.program = opt.programLabel;
  man.argv = opt.argvEcho;
  man.addArtifact("stats", opt.statsJsonPath);
  man.addArtifact("trace", opt.tracePath);
  man.addArtifact("forest", opt.pathForestPath);
  man.addArtifact("forest_dot", opt.pathDotPath);
  man.addArtifact("profile", opt.profilePath);
  man.addArtifact("profile_folded", opt.profileFoldedPath);
  if (opt.eventsPath != "-") man.addArtifact("events", opt.eventsPath);
  man.addArtifact("checkpoint", opt.checkpointPath);
  man.writeFile(opt.manifestPath);
}

/// --resume events splice: check that the first `offset` bytes of the
/// events file canonicalize to the hash the checkpoint recorded, then cut
/// the file back to that offset so the resumed run appends exactly where
/// the checkpointed run left off. Bytes past the offset were written
/// after the checkpoint (the killed run's doomed suffix) and are
/// discarded.
void spliceEventsFile(const std::string& path, const json::Value& ev,
                      const std::string& resumePath) {
  const uint64_t offset = core::ckpt::fieldU64(ev, "offset");
  const std::string want = core::ckpt::fieldStr(ev, "canon_sha256");
  std::string bytes = support::readFileBytes(path);
  if (bytes.size() < offset) {
    throw InputError("events file '" + path + "' is shorter (" +
                     std::to_string(bytes.size()) + " bytes) than the " +
                     std::to_string(offset) +
                     "-byte prefix checkpoint " + resumePath +
                     " recorded — wrong events file?");
  }
  bytes.resize(offset);
  std::istringstream in(bytes);
  std::ostringstream canon;
  obs::canonicalizeEvents(in, canon);
  const std::string got = hash::sha256Hex(canon.str());
  if (got != want) {
    throw InputError("events file '" + path +
                     "' does not match checkpoint " + resumePath +
                     " (canonical prefix hash " + got + ", checkpoint has " +
                     want + ")");
  }
  std::filesystem::resize_file(path, offset);
}

}  // namespace

std::string usage() {
  return
      "adlsym — ADL-based retargetable symbolic execution\n"
      "\n"
      "usage:\n"
      "  adlsym isas                                list shipped ISAs\n"
      "  adlsym model <isa>                         dump the ISA model\n"
      "  adlsym lint <isa|file.adl> [file.img]      verify a specification\n"
      "  adlsym asm <isa> <file.s>                  assemble to image text\n"
      "  adlsym disasm <isa> <file.img>             disassemble an image\n"
      "  adlsym run <isa> <file.img> [in...]        concrete execution\n"
      "  adlsym explore <isa> <file.img> [options]  symbolic exploration\n"
      "  adlsym profile <isa> <file.img> [options]  exploration + the\n"
      "                                             cost-attribution tables\n"
      "                                             (accepts all explore\n"
      "                                             options)\n"
      "  adlsym replay <query-dir>                  re-solve a captured\n"
      "                                             query corpus and diff\n"
      "  adlsym tail <events-file>                  live run inspector over\n"
      "                                             an --events stream\n"
      "  adlsym events summarize <events-file>      recompute run counters\n"
      "                                             from the stream and\n"
      "                                             check reconciliation\n"
      "  adlsym verify-run <manifest.json>          re-hash a run's\n"
      "                                             artifacts and replay\n"
      "                                             cross-artifact checks\n"
      "\n"
      "lint options (docs/linting.md):\n"
      "  --format=text|json   output rendering (default text)\n"
      "  --werror             warning findings also fail the exit code\n"
      "  --stats-json=<file>  finding counts + per-pass timings\n"
      "\n"
      "explore options:\n"
      "  --strategy dfs|bfs|random|coverage   search order (default dfs)\n"
      "  --max-paths N                        completed-path budget\n"
      "  --max-steps N                        total instruction budget\n"
      "  --first-defect                       stop at the first defect\n"
      "  --merge                              veritesting state merging\n"
      "  --coverage                           per-insn coverage report\n"
      "  --lint                               lint model+image first;\n"
      "                                       error findings abort\n"
      "  --prefilter=on|off                   abstract-interpretation\n"
      "                                       pre-solver in front of bit-\n"
      "                                       blasting (default on;\n"
      "                                       docs/absdomain.md)\n"
      "  --engine=bytecode|interp             ADL execution engine: load-\n"
      "                                       time RTL bytecode compiler\n"
      "                                       (default) or the tree-walking\n"
      "                                       reference interpreter; all\n"
      "                                       artifacts are byte-identical\n"
      "                                       (docs/bytecode.md)\n"
      "\n"
      "parallel exploration (explore; docs/parallelism.md):\n"
      "  --jobs N             worker threads (1..64); results are byte-\n"
      "                       identical across N under --clock=manual.\n"
      "                       Incompatible with --merge and --query-log\n"
      "  --qcache=on|off|N    shared SMT query cache across workers:\n"
      "                       on = unbounded (default), off = solve every\n"
      "                       query, N = capacity with FIFO eviction\n"
      "                       (eviction makes hit counts schedule-dependent)\n"
      "\n"
      "resource governor (explore; docs/robustness.md):\n"
      "  --max-frontier N       cap the frontier; excess states are\n"
      "                         evicted (strategy-aware) as truncated\n"
      "  --mem-budget-mb N      approximate state+term byte budget\n"
      "  --solver-timeout-ms N  per-query solver deadline (Unknown on\n"
      "                         expiry, layered on the conflict budget)\n"
      "  --max-wall-ms N        whole-run wall budget; also bounds\n"
      "                         in-flight solver queries\n"
      "  --inject=SITE:N[,..]   deterministic fault injection: fire the\n"
      "                         named fault site on its Nth hit (sites:\n"
      "                         solver.check, image.read, obs.write,\n"
      "                         alloc, ckpt.write, ckpt.read); also via\n"
      "                         env ADLSYM_FAULTS\n"
      "  --clock=manual[:US]    deterministic manual clock advancing US\n"
      "                         microseconds per read (reproducible\n"
      "                         stats documents)\n"
      "\n"
      "crash-safe checkpointing (explore; docs/robustness.md):\n"
      "  --checkpoint=<file>    write an adlsym-ckpt-v1 checkpoint\n"
      "                         (atomically replaced, self-hashed) at\n"
      "                         every level barrier, on SIGINT/SIGTERM,\n"
      "                         and at run end. Requires --clock=manual\n"
      "  --checkpoint-every=N   level-barrier cadence in per-path steps;\n"
      "                         checkpoint bytes are identical across\n"
      "                         --jobs values\n"
      "  --resume=<file>        continue a checkpointed run; with the\n"
      "                         same flags, every final artifact is\n"
      "                         byte-identical to the uninterrupted run\n"
      "                         (even after kill -9). Corrupt/truncated\n"
      "                         checkpoints are rejected with exit 2\n"
      "\n"
      "exit codes: 0 ok; 1 findings (defects, lint errors, replay\n"
      "mismatches); 2 bad input; 3 exploration truncated by a budget\n"
      "or stopped by a signal (partial results); 4 internal error /\n"
      "injected fault\n"
      "\n"
      "observability (explore and run; docs/observability.md):\n"
      "  --stats-json=<file>   aggregated JSON stats document (summary,\n"
      "                        solver, metrics, opcode/branch-site tables)\n"
      "  --trace=<file>        JSONL structured trace event stream\n"
      "  --path-forest=<file>  path-forest JSON record (explore only)\n"
      "  --path-dot=<file>     path forest as Graphviz DOT (explore only)\n"
      "  --query-log=<dir>     capture every solver query as SMT-LIB +\n"
      "                        metadata; replay with `adlsym replay`\n"
      "  --progress[=N]        heartbeat to stderr every N seconds\n"
      "                        (default 1); includes the qcache hit rate\n"
      "                        and current frontier depth\n"
      "  --profile=<file>      adlsym-profile-v2 cost attribution: per-\n"
      "                        opcode / per-RTL-statement tick counts and\n"
      "                        per-branch-site canonical solver cost;\n"
      "                        byte-identical across --jobs under\n"
      "                        --clock=manual\n"
      "  --profile-folded=<f>  collapsed-stack lines for flamegraph\n"
      "                        tooling\n"
      "  --events=<file|->     adlsym-events-v1 flight recorder: one JSONL\n"
      "                        event per step/fork/path/query plus periodic\n"
      "                        snapshots; the deterministic event set is\n"
      "                        identical across --jobs under --clock=manual\n"
      "                        (sort with tools/events_canon); inspect live\n"
      "                        with `adlsym tail`\n"
      "  --events-snapshot=N   snapshot cadence in step events (default\n"
      "                        1000; 0 = never)\n"
      "  --manifest=<file>     adlsym-run-v1 manifest: every artifact of\n"
      "                        this run with its SHA-256; check with\n"
      "                        `adlsym verify-run`\n"
      "\n"
      "tail options: --no-follow (render once), --max-wait=S (give up\n"
      "after S seconds without run_end)\n"
      "events summarize options: --stats=<stats.json> (cross-check the\n"
      "stream against the run's stats document)\n";
}

CommandResult cmdIsas() {
  std::ostringstream os;
  for (const std::string& name : isa::allIsaNames()) {
    auto model = isa::loadIsa(name);
    const auto st = model->stats();
    os << formatStr("%-8s %2u-bit %-6s  %2u insns  %u encodings  %u regs\n",
                    name.c_str(), model->wordSize,
                    model->endianLittle ? "little" : "big", st.numInsns,
                    st.numEncodings, st.numRegs);
  }
  return {0, os.str()};
}

CommandResult cmdModel(const std::string& isaName) {
  auto model = isa::loadIsa(isaName);
  std::ostringstream os;
  os << "arch " << model->name << ": wordsize " << model->wordSize << ", "
     << (model->endianLittle ? "little" : "big") << " endian\n\nstorage:\n";
  for (const auto& r : model->regs) {
    os << formatStr("  %-8s : %2u bits%s%s\n", r.name.c_str(), r.width,
                    r.isPC ? "  (pc)" : "", r.isFlag ? "  (flag)" : "");
  }
  if (model->regfile) {
    os << formatStr("  %s[%u]   : %2u bits", model->regfile->name.c_str(),
                    model->regfile->count, model->regfile->width);
    if (model->regfile->zeroReg) {
      os << formatStr("  (%s%u = 0)", model->regfile->name.c_str(),
                      *model->regfile->zeroReg);
    }
    os << '\n';
  }
  os << formatStr("  %-8s : byte[%u]\n", model->mem.name.c_str(),
                  model->mem.addrWidth);
  os << "\nencodings:\n";
  for (const auto& e : model->encodings) {
    os << formatStr("  %-8s %u bits:", e.name.c_str(), e.totalWidth);
    for (const auto& f : e.fields) {
      os << formatStr(" [%s:%u@%u]", f.name.c_str(), f.width, f.lo);
    }
    os << '\n';
  }
  os << "\ninstructions:\n";
  for (const auto& i : model->insns) {
    os << formatStr("  %-6s %u bytes  mask=%010llx match=%010llx  \"%s\"\n",
                    i.name.c_str(), i.lengthBytes,
                    static_cast<unsigned long long>(i.fixedMask),
                    static_cast<unsigned long long>(i.fixedMatch),
                    i.syntax.c_str());
  }
  return {0, os.str()};
}

CommandResult cmdLint(const std::string& subject, const std::string& adlSource,
                      const LintOptions& opt) {
  DiagEngine diags(subject);
  CommandTelemetry ct(opt.statsJsonPath, "");
  auto model = adl::loadArchModel(adlSource, diags);
  analysis::LintReport report;
  if (!model) {
    // Load failures become findings so JSON consumers see one schema.
    // Sema already emits "[ADL001] ..." for the defects it promotes;
    // re-parse that prefix so the finding keeps its real code.
    for (const Diagnostic& d : diags.all()) {
      analysis::Finding f;
      f.code = analysis::LintCode::ModelError;
      f.severity = d.severity;
      f.loc = d.loc;
      f.message = d.message;
      if (!d.message.empty() && d.message[0] == '[') {
        const size_t close = d.message.find(']');
        if (close != std::string::npos) {
          if (const auto code = analysis::lintCodeFromName(
                  d.message.substr(1, close - 1))) {
            f.code = *code;
            size_t start = close + 1;
            while (start < d.message.size() && d.message[start] == ' ') ++start;
            f.message = d.message.substr(start);
          }
        }
      }
      report.add(std::move(f));
    }
  } else {
    // Run the passes individually so --stats-json can attribute time to
    // each (lintModel() is exactly these three appends).
    telemetry::Telemetry* tel = ct.get();
    std::vector<analysis::Finding> findings;
    {
      telemetry::ScopedTimer t(
          tel, tel ? &tel->metrics().histogram("lint.decode_space_us") : nullptr);
      analysis::appendDecodeSpaceFindings(*model, findings);
    }
    {
      telemetry::ScopedTimer t(
          tel, tel ? &tel->metrics().histogram("lint.dataflow_us") : nullptr);
      analysis::appendDataflowFindings(*model, findings);
    }
    {
      telemetry::ScopedTimer t(
          tel, tel ? &tel->metrics().histogram("lint.absdom_us") : nullptr);
      analysis::appendAbsdomFindings(*model, findings);
    }
    for (analysis::Finding& f : findings) report.add(std::move(f));
    if (!opt.imageText.empty()) {
      telemetry::ScopedTimer t(
          tel, tel ? &tel->metrics().histogram("lint.cfg_us") : nullptr);
      report.append(analysis::lintImage(*model, parseImageArg(opt.imageText)));
    }
  }
  ct.writeStatsJson("lint", subject, [&](json::Writer& w) {
    w.key("lint").beginObject();
    w.kv("findings", static_cast<uint64_t>(report.findings().size()));
    w.kv("errors", report.count(Severity::Error));
    w.kv("warnings", report.count(Severity::Warning));
    w.kv("notes", report.count(Severity::Note));
    w.kv("clean", report.findings().empty());
    w.endObject();
  });
  const int exitCode = report.hasErrors(opt.werror) ? 1 : 0;
  return {exitCode,
          opt.json ? report.formatJson(subject) : report.formatText(subject)};
}

CommandResult cmdAsm(const std::string& isaName, const std::string& source) {
  auto model = isa::loadIsa(isaName);
  DiagEngine diags("<asm>");
  asmgen::Assembler assembler(*model);
  auto image = assembler.assemble(source, diags);
  if (!image) return fail(diags.str());
  return {0, image->serialize()};
}

CommandResult cmdDisasm(const std::string& isaName,
                        const std::string& imageText) {
  auto model = isa::loadIsa(isaName);
  const loader::Image image = parseImageArg(imageText);
  std::ostringstream os;
  for (const loader::Section& s : image.sections()) {
    os << "section " << s.name << ":\n";
    os << asmgen::disassembleSection(*model, image, s.name);
  }
  return {0, os.str()};
}

CommandResult cmdRun(const std::string& isaName, const std::string& imageText,
                     const std::vector<uint64_t>& inputs,
                     const RunOptions& ropt) {
  auto model = isa::loadIsa(isaName);
  const loader::Image image = parseImageArg(imageText);
  CommandTelemetry ct(ropt.statsJsonPath, ropt.tracePath);
  core::ConcreteRunner runner(*model, image, ct.get());
  const auto r = runner.run(inputs);
  ct.writeStatsJson("run", isaName, [&](json::Writer& w) {
    w.key("run").beginObject();
    w.kv("status", core::pathStatusName(r.status));
    w.kv("exit_code", r.exitCode);
    w.kv("steps", r.steps);
    w.kv("final_pc", r.finalPc);
    if (r.defect) w.kv("defect", core::defectKindName(*r.defect));
    w.key("outputs").beginArray();
    for (const uint64_t v : r.outputs) w.value(v);
    w.endArray();
    w.endObject();
  });
  ct.finish();
  std::ostringstream os;
  os << "status: " << core::pathStatusName(r.status);
  if (r.status == core::PathStatus::Exited) os << " (code " << r.exitCode << ")";
  if (r.defect) {
    os << formatStr(" %s at pc=0x%llx", core::defectKindName(*r.defect),
                    static_cast<unsigned long long>(r.defectPc));
  }
  os << "\nsteps: " << r.steps << "\noutputs:";
  for (const uint64_t v : r.outputs) os << ' ' << v;
  os << '\n';
  return {r.status == core::PathStatus::Exited ? 0 : 1, os.str()};
}

CommandResult cmdExplore(const std::string& isaName,
                         const std::string& imageText,
                         const ExploreOptions& optIn) {
  // Checkpointing adjusts the effective options (it routes to the
  // parallel engine), so work on a copy.
  ExploreOptions opt = optIn;
  if (opt.checkpointEverySteps != 0 && opt.checkpointPath.empty()) {
    return fail("--checkpoint-every requires --checkpoint");
  }
  const bool ckptMode = !opt.checkpointPath.empty() || !opt.resumePath.empty();
  if (ckptMode) {
    // The kill/resume byte-identity contract (docs/robustness.md) is
    // defined on the deterministic clock and the parallel engine's
    // structural path keys; live/timing-coupled artifacts cannot be
    // spliced across a resume, so they are rejected up front.
    if (opt.jobs == 0) opt.jobs = 1;
    if (opt.manualClockStepUs == 0) {
      return fail("--checkpoint/--resume require --clock=manual");
    }
    if (opt.profileStdout || !opt.profilePath.empty() ||
        !opt.profileFoldedPath.empty()) {
      return fail("--checkpoint/--resume are not supported with profiling");
    }
    if (!opt.tracePath.empty()) {
      return fail("--checkpoint/--resume are not supported with --trace");
    }
    if (opt.progressSeconds > 0.0) {
      return fail("--checkpoint/--resume are not supported with --progress");
    }
    if (opt.eventsPath == "-") {
      return fail("--checkpoint/--resume need a seekable --events file, "
                  "not '-'");
    }
  }
  SessionOptions sopt;
  if (opt.strategy == "dfs") sopt.explorer.strategy = core::SearchStrategy::DFS;
  else if (opt.strategy == "bfs") sopt.explorer.strategy = core::SearchStrategy::BFS;
  else if (opt.strategy == "random") sopt.explorer.strategy = core::SearchStrategy::Random;
  else if (opt.strategy == "coverage") sopt.explorer.strategy = core::SearchStrategy::Coverage;
  else return fail("unknown strategy '" + opt.strategy + "'");
  sopt.explorer.maxPaths = opt.maxPaths;
  sopt.explorer.maxTotalSteps = opt.maxTotalSteps;
  sopt.explorer.stopAtFirstDefect = opt.stopAtFirstDefect;
  sopt.explorer.mergeStates = opt.mergeStates;
  sopt.explorer.maxFrontier = opt.maxFrontier;
  sopt.explorer.memBudgetBytes = opt.memBudgetMb * 1024 * 1024;
  sopt.explorer.maxWallSeconds = double(opt.maxWallMs) / 1e3;

  // Fault schedule for this command only (support/fault.h); the guard
  // disarms on every exit path, including an injected throw.
  fault::ScopedArm faultArm(opt.injectSpec);

  // Session assembles from source; for a prebuilt image we drive the
  // layers directly, exactly like examples/newisa.cpp.
  auto model = isa::loadIsa(isaName);
  const loader::Image image = parseImageArg(imageText);
  std::string lintText;
  if (opt.lint) {
    analysis::LintReport report = analysis::lintModel(*model);
    report.append(analysis::lintImage(*model, image));
    if (!report.findings().empty()) lintText = report.formatText(isaName);
    if (report.hasErrors()) return {1, lintText};
  }
  const bool profiling = opt.profileStdout || !opt.profilePath.empty() ||
                         !opt.profileFoldedPath.empty();

  // ---- parallel engine (--jobs, docs/parallelism.md) ------------------
  if (opt.jobs > 0) {
    if (opt.mergeStates) {
      return fail("--merge is not supported with --jobs");
    }
    if (!opt.queryLogDir.empty()) {
      return fail("--query-log is not supported with --jobs");
    }

    // ---- --resume: load + verify the checkpoint ----------------------
    const std::string imageSha = hash::sha256Hex(imageText);
    const bool resuming = !opt.resumePath.empty();
    json::Value resumeDoc;
    if (resuming) {
      resumeDoc = core::ckpt::loadCheckpointFile(opt.resumePath);
      const auto expect = [&](const char* name, const std::string& want) {
        const std::string got = core::ckpt::fieldStr(resumeDoc, name);
        if (got != want) {
          throw InputError("checkpoint " + opt.resumePath + ": " + name +
                           " mismatch (checkpoint has '" + got +
                           "', this run is '" + want + "')");
        }
      };
      expect("isa", isaName);
      expect("strategy", opt.strategy);
      expect("image_sha256", imageSha);
      if (core::ckpt::fieldU64(resumeDoc, "rng_seed") !=
          sopt.explorer.rngSeed) {
        throw InputError("checkpoint " + opt.resumePath +
                         ": rng_seed mismatch");
      }
      // The events stream is part of the checkpointed state: a resume
      // must continue the same stream (or, like the original run, have
      // none at all).
      const bool ckptHasEvents = resumeDoc.find("events") != nullptr;
      if (ckptHasEvents && opt.eventsPath.empty()) {
        throw InputError("checkpoint " + opt.resumePath +
                         " was written with --events; pass the same "
                         "events file to resume");
      }
      if (!ckptHasEvents && !opt.eventsPath.empty()) {
        throw InputError("checkpoint " + opt.resumePath +
                         " was written without --events; drop the flag "
                         "to resume");
      }
      if (ckptHasEvents) {
        spliceEventsFile(opt.eventsPath, core::ckpt::field(resumeDoc, "events"),
                         opt.resumePath);
      }
    }

    CommandTelemetry ct(opt.statsJsonPath, opt.tracePath,
                        opt.manualClockStepUs);
    if (resuming && ct.manualClock() != nullptr) {
      // Continue the manual clock exactly where the checkpointed run's
      // next read would have been, before any component reads it.
      ct.manualClock()->advance(core::ckpt::fieldU64(resumeDoc, "clock_us"));
    }
    // Live observers only; the path forest is rebuilt from the merged
    // tree after the run, so only thread-safe collectors ride along, all
    // behind one locked mux.
    core::LockedObserverMux mux;
    FlightRecorder fr;
    fr.open(opt, *model, image, ct.get(), resuming);
    if (fr.bus) mux.add(fr.bus.get());
    std::unique_ptr<obs::ProgressMeter> progress;
    if (opt.progressSeconds > 0.0) {
      // Always on the system clock: heartbeats are a live wall-time
      // display from concurrent workers, not a deterministic artifact.
      progress = std::make_unique<obs::ProgressMeter>(
          nullptr, std::cerr, opt.progressSeconds, fr.bus.get(), fr.codePcs);
      mux.add(progress.get());
    }
    std::unique_ptr<obs::SiteStatsCollector> sites;
    if (ct.wantsStatsJson()) {
      sites = std::make_unique<obs::SiteStatsCollector>(*model, image);
      mux.add(sites.get());
      if (resuming) {
        if (const json::Value* sv = resumeDoc.find("sites")) {
          sites->restoreFromCkpt(*sv);
        }
      }
    }
    std::unique_ptr<core::RtlProfile> rtlProf;
    std::unique_ptr<obs::ProfileCollector> profCollector;
    if (profiling) {
      rtlProf = std::make_unique<core::RtlProfile>(*model);
      profCollector = std::make_unique<obs::ProfileCollector>(*model, image);
      mux.add(profCollector.get());
    }

    std::unique_ptr<smt::QueryCache> qcache;
    if (opt.qcacheOn) {
      qcache = std::make_unique<smt::QueryCache>(opt.qcacheCapacity);
      if (resuming) {
        if (const json::Value* qv = resumeDoc.find("qcache")) {
          qcache->restoreFromCkpt(*qv);
        }
      }
    }

    core::ParallelConfig pcfg;
    pcfg.base = sopt.explorer;
    if (!mux.empty()) pcfg.base.observer = &mux;
    pcfg.jobs = static_cast<unsigned>(opt.jobs);
    pcfg.manualClockStepUs = opt.manualClockStepUs;
    pcfg.qcache = qcache.get();
    pcfg.prefilter = opt.prefilterOn;
    pcfg.solverConflictBudget = sopt.solverConflictBudget;
    pcfg.solverTimeoutMicros = opt.solverTimeoutMs * 1000;
    pcfg.solverShapeProfile = profiling;
    pcfg.queryListener = fr.bus.get();
    pcfg.checkpointEverySteps = opt.checkpointEverySteps;
    pcfg.checkpointPath = opt.checkpointPath;
    pcfg.ckptIsa = isaName;
    pcfg.ckptStrategy = opt.strategy;
    pcfg.ckptImageSha = imageSha;
    if (resuming) pcfg.resume = &resumeDoc;
    if (!opt.checkpointPath.empty()) {
      // CLI-owned checkpoint sections. Runs on the checkpointing worker
      // while every other worker is quiescent, so the collectors are
      // stable and the events stream is fully flushed.
      obs::SiteStatsCollector* sitesPtr = sites.get();
      obs::EventBus* busPtr = fr.bus.get();
      std::ofstream* eventsFile = &fr.file;
      const std::string eventsPath = opt.eventsPath;
      pcfg.ckptExtras = [sitesPtr, busPtr, eventsFile, eventsPath](
                            json::Writer& w,
                            const core::ParallelConfig::CkptInfo& info) {
        if (sitesPtr != nullptr) {
          w.key("sites");
          sitesPtr->writeCkptJson(w);
        }
        if (busPtr != nullptr) {
          busPtr->flush();
          if (eventsFile->is_open()) eventsFile->flush();
          // Stream watermark: everything written so far is checkpointed
          // state; --resume cuts the file back to this offset and checks
          // the canonical-prefix hash before splicing.
          std::string bytes = support::readFileBytes(eventsPath);
          std::istringstream in(bytes);
          std::ostringstream canon;
          obs::canonicalizeEvents(in, canon);
          obs::EventBus::CkptGauges g;
          g.steps = info.steps;
          g.frontier = info.frontier;
          g.frontierBytes = info.frontierBytes;
          g.pathsDone = info.pathsDone;
          g.covered = info.coveredPcs;
          g.queries = info.solverQueries;
          g.cacheHits = info.cacheHits;
          g.solverMicros = info.solverMicros;
          w.key("events").beginObject();
          w.kv("offset", static_cast<uint64_t>(bytes.size()));
          w.kv("canon_sha256", std::string_view(hash::sha256Hex(canon.str())));
          w.key("bus");
          busPtr->writeCkptJson(w, g);
          w.endObject();
        }
      };
    }

    const adl::ArchModel& m = *model;
    core::RtlProfile* rp = rtlProf.get();
    const bool interp = opt.engine == "interp";
    core::ParallelExplorer pex(
        image, sopt.engine, pcfg,
        [&m, rp, interp](
            core::EngineServices& svc) -> std::unique_ptr<core::Executor> {
          std::unique_ptr<core::Executor> ex;
          if (interp) {
            ex = std::make_unique<core::AdlExecutor>(m, svc);
          } else {
            ex = std::make_unique<core::BytecodeExecutor>(m, svc);
          }
          // Workers are destroyed inside run(), so the destructor flush
          // lands every worker's statement counts before we read them.
          if (rp != nullptr) ex->setRtlProfile(rp);
          return ex;
        },
        ct.get());
    if (resuming && fr.bus) {
      // The spliced stream prefix already carries the run_begin event;
      // adopt the checkpoint's watermarks instead of emitting another.
      obs::EventBus::RunMeta rm;
      rm.command = opt.profileStdout ? "profile" : "explore";
      rm.isa = isaName;
      rm.strategy = opt.strategy;
      rm.program = opt.programLabel;
      fr.bus->resumeRun(
          rm, core::ckpt::field(core::ckpt::field(resumeDoc, "events"), "bus"));
    } else {
      fr.runBegin(isaName, opt);
    }
    core::ParallelResult pres = pex.run();
    const core::ExploreSummary& summary = pres.summary;
    if (fr.bus) {
      // Workers were destroyed inside run(), so the evaluator tick total
      // is already flushed.
      fr.bus->runEnd(summary, pex.solverTelemetry(),
                     rtlProf ? rtlProf->total() : 0);
    }

    if (!opt.pathForestPath.empty() || !opt.pathDotPath.empty()) {
      const obs::PathForestRecorder forest = obs::forestFromTree(pres.tree);
      if (!opt.pathForestPath.empty()) {
        fault::hit("obs.write");
        std::ofstream out(opt.pathForestPath,
                          std::ios::binary | std::ios::trunc);
        if (!out) {
          return fail("cannot open path-forest file '" + opt.pathForestPath +
                      "'");
        }
        forest.writeJson(out);
      }
      if (!opt.pathDotPath.empty()) {
        fault::hit("obs.write");
        std::ofstream out(opt.pathDotPath, std::ios::binary | std::ios::trunc);
        if (!out) {
          return fail("cannot open path-dot file '" + opt.pathDotPath + "'");
        }
        forest.writeDot(out);
      }
    }

    obs::ProfileReport rep;
    if (profiling) {
      rep.isa = isaName;
      rep.program = opt.programLabel;
      rep.prof = profCollector.get();
      rep.rtl = rtlProf.get();
      rep.engineSteps = summary.totalSteps;
      // Independent of the observer deltas: the per-statement tables
      // flushed by the worker evaluators. Reconciliation cross-checks
      // the two accumulation paths.
      rep.engineRtlTicks = rtlProf->total();
      rep.solver = pex.solverTelemetry();
      if (qcache) {
        rep.hasQcache = true;
        rep.qcache = qcache->stats();
      }
      rep.shapes = &pex.queryShapes();
    }

    ct.writeStatsJson("explore", isaName, [&](json::Writer& w) {
      w.kv("strategy", std::string_view(opt.strategy));
      // v8 addition: which ADL engine ran. Stripped by stats_strip — the
      // byte-identity contract holds *across* engines (docs/bytecode.md).
      w.key("engine");
      w.beginObject();
      w.kv("name", std::string_view(opt.engine));
      w.endObject();
      w.key("summary");
      core::writeSummaryJson(w, summary);
      w.key("solver");
      pex.solverTelemetry().writeJson(w);
      // v6 addition: the abstract-prefilter block (docs/absdomain.md).
      w.key("prefilter");
      pex.solverTelemetry().writePrefilterJson(w);
      // The shared query cache. Note no "jobs" field anywhere in the
      // document — byte-identity across --jobs values is the contract,
      // so the document cannot mention the jobs count.
      w.key("qcache");
      if (qcache) {
        qcache->stats().writeJson(w);
      } else {
        w.beginObject();
        w.kv("enabled", false);
        w.endObject();
      }
      if (sites) sites->writeJson(w);
      // v5 addition: the profile summary block (profiling runs only).
      if (profiling) rep.writeSummary(w);
      // v7 addition: the flight-recorder accounting block.
      fr.writeStatsJson(w);
    });
    ct.finish();

    if (profiling) {
      // Pool diagnostics are schedule-dependent by nature (which worker
      // stole what), so they go to stderr only — never into the
      // byte-identical stdout/JSON artifacts.
      const core::ParallelExplorer::PoolStats& ps = pex.poolStats();
      std::cerr << "[pool] jobs=" << ps.jobs << " steals=" << ps.steals
                << " steal_wait_us=" << ps.stealWaitMicros
                << " steps_min=" << ps.minWorkerSteps
                << " steps_max=" << ps.maxWorkerSteps
                << " steps_total=" << ps.totalSteps << "\n";
      const std::string err = writeProfileArtifacts(rep, opt);
      if (!err.empty()) return fail(err);
    }

    // Every artifact stream is final now; the manifest hashes them.
    fr.close();
    writeRunManifest(isaName, opt);

    std::ostringstream os;
    os << lintText;
    os << core::formatSummary(summary);
    if (opt.coverageReport) {
      for (const loader::Section& sec : image.sections()) {
        if (sec.writable) continue;
        os << "\ncoverage of section " << sec.name << ":\n"
           << core::formatCoverage(*model, image, sec.name, summary);
      }
    }
    os << pex.solverTelemetry().format();
    if (opt.profileStdout) os << rep.formatText();
    int code = 0;
    if (summary.numDefects() > 0) {
      code = 1;
    } else if (summary.budgetExhausted() ||
               (!summary.stopReason.empty() &&
                summary.stopReason != "first-defect")) {
      code = 3;
    }
    return {code, os.str()};
  }

  CommandTelemetry ct(opt.statsJsonPath, opt.tracePath, opt.manualClockStepUs);
  smt::TermManager tm;
  smt::SmtSolver solver(tm);
  solver.setConflictBudget(sopt.solverConflictBudget);
  solver.setQueryTimeoutMicros(opt.solverTimeoutMs * 1000);
  std::unique_ptr<smt::PreSolver> presolver;
  if (opt.prefilterOn) {
    presolver = std::make_unique<smt::PreSolver>(tm);
    solver.setPreSolver(presolver.get());
  }

  // Observatory wiring (docs/observability.md): each flag adds one
  // observer; the mux keeps the explorer's single-pointer hook.
  core::ObserverMux mux;
  FlightRecorder fr;
  fr.open(opt, *model, image, ct.get());
  if (fr.bus) {
    mux.add(fr.bus.get());
    solver.addQueryListener(fr.bus.get());
  }
  std::unique_ptr<obs::PathForestRecorder> forest;
  if (!opt.pathForestPath.empty() || !opt.pathDotPath.empty()) {
    forest = std::make_unique<obs::PathForestRecorder>();
    mux.add(forest.get());
  }
  std::unique_ptr<obs::QueryLogger> qlog;
  if (!opt.queryLogDir.empty()) {
    qlog = std::make_unique<obs::QueryLogger>(opt.queryLogDir);
    mux.add(qlog.get());
    solver.setQueryListener(qlog.get());
  }
  std::unique_ptr<obs::ProgressMeter> progress;
  if (opt.progressSeconds > 0.0) {
    progress = std::make_unique<obs::ProgressMeter>(
        ct.get(), std::cerr, opt.progressSeconds, fr.bus.get(), fr.codePcs);
    mux.add(progress.get());
  }
  std::unique_ptr<obs::SiteStatsCollector> sites;
  if (ct.wantsStatsJson()) {
    sites = std::make_unique<obs::SiteStatsCollector>(*model, image);
    mux.add(sites.get());
  }
  std::unique_ptr<core::RtlProfile> rtlProf;
  std::unique_ptr<obs::ProfileCollector> profCollector;
  if (profiling) {
    rtlProf = std::make_unique<core::RtlProfile>(*model);
    profCollector = std::make_unique<obs::ProfileCollector>(*model, image);
    mux.add(profCollector.get());
    solver.setShapeProfiling(true);
  }
  if (!mux.empty()) sopt.explorer.observer = &mux;

  core::EngineServices services(tm, solver, image, sopt.engine, ct.get());
  std::unique_ptr<core::Executor> executor;
  if (opt.engine == "interp") {
    executor = std::make_unique<core::AdlExecutor>(*model, services);
  } else {
    executor = std::make_unique<core::BytecodeExecutor>(*model, services);
  }
  if (rtlProf) executor->setRtlProfile(rtlProf.get());
  core::Explorer explorer(*executor, services, sopt.explorer);
  fr.runBegin(isaName, opt);
  const auto summary = explorer.run();
  if (rtlProf) executor->flushRtlProfile();
  if (fr.bus) {
    fr.bus->runEnd(summary, solver.telemetrySnapshot(),
                   rtlProf ? rtlProf->total() : 0);
  }

  if (!opt.pathForestPath.empty()) {
    fault::hit("obs.write");
    std::ofstream out(opt.pathForestPath, std::ios::binary | std::ios::trunc);
    if (!out) return fail("cannot open path-forest file '" + opt.pathForestPath + "'");
    forest->writeJson(out);
  }
  if (!opt.pathDotPath.empty()) {
    fault::hit("obs.write");
    std::ofstream out(opt.pathDotPath, std::ios::binary | std::ios::trunc);
    if (!out) return fail("cannot open path-dot file '" + opt.pathDotPath + "'");
    forest->writeDot(out);
  }

  obs::ProfileReport rep;
  if (profiling) {
    rep.isa = isaName;
    rep.program = opt.programLabel;
    rep.prof = profCollector.get();
    rep.rtl = rtlProf.get();
    rep.engineSteps = summary.totalSteps;
    rep.engineRtlTicks = rtlProf->total();
    rep.solver = solver.telemetrySnapshot();
    rep.shapes = &solver.queryShapes();
  }

  ct.writeStatsJson("explore", isaName, [&](json::Writer& w) {
    w.kv("strategy", std::string_view(opt.strategy));
    // v8 addition: which ADL engine ran. Stripped by stats_strip — the
    // byte-identity contract holds *across* engines (docs/bytecode.md).
    w.key("engine");
    w.beginObject();
    w.kv("name", std::string_view(opt.engine));
    w.endObject();
    w.key("summary");
    core::writeSummaryJson(w, summary);
    w.key("solver");
    solver.telemetrySnapshot().writeJson(w);
    // v6 addition: the abstract-prefilter block (docs/absdomain.md).
    w.key("prefilter");
    solver.telemetrySnapshot().writePrefilterJson(w);
    if (sites) sites->writeJson(w);
    // v5 addition: the profile summary block (profiling runs only).
    if (profiling) rep.writeSummary(w);
    // v7 addition: the flight-recorder accounting block.
    fr.writeStatsJson(w);
  });
  ct.finish();

  if (profiling) {
    const std::string err = writeProfileArtifacts(rep, opt);
    if (!err.empty()) return fail(err);
  }

  // Every artifact stream is final now; the manifest hashes them.
  fr.close();
  writeRunManifest(isaName, opt);

  std::ostringstream os;
  os << lintText;
  os << core::formatSummary(summary);
  if (opt.coverageReport) {
    for (const loader::Section& sec : image.sections()) {
      if (sec.writable) continue;
      os << "\ncoverage of section " << sec.name << ":\n"
         << core::formatCoverage(*model, image, sec.name, summary);
    }
  }
  os << solver.telemetrySnapshot().format();
  if (opt.profileStdout) os << rep.formatText();
  // Exit-code table (docs/robustness.md): defects found beat everything
  // (the findings are the tool's point, even from a partial run); then
  // budget-truncated partial results report 3 so CI can tell "clean and
  // complete" from "clean so far, but the engine gave up".
  int code = 0;
  if (summary.numDefects() > 0) {
    code = 1;
  } else if (summary.budgetExhausted() ||
             (!summary.stopReason.empty() &&
              summary.stopReason != "first-defect")) {
    code = 3;
  }
  return {code, os.str()};
}

CommandResult cmdReplay(const std::string& dir) {
  const obs::ReplayReport report = obs::replayCorpus(dir);
  return {report.exitCode(), report.formatText()};
}

CommandResult cmdTail(const std::string& eventsPath, const TailOptions& opt) {
  std::ifstream in(eventsPath, std::ios::binary);
  if (!in.is_open()) {
    throw InputError("cannot open events file '" + eventsPath + "'");
  }
  obs::TailState state;
  std::string line;
  size_t lineNo = 0;
  auto drain = [&]() {
    bool any = false;
    while (std::getline(in, line)) {
      ++lineNo;
      if (line.empty()) continue;
      try {
        state.apply(json::parse(line));
      } catch (const Error& e) {
        throw InputError("events line " + std::to_string(lineNo) + ": " +
                         e.what());
      }
      any = true;
    }
    // getline stops at EOF with the fail bit set; clear it so the next
    // poll picks up freshly appended lines (tail -f semantics).
    in.clear();
    return any;
  };

  drain();
  if (!opt.follow) {
    return {0, state.render()};
  }

  // Live mode: redraw on stderr after each batch of new events; the final
  // dashboard goes to stdout like every other command.
  std::cerr << state.render();
  double waited = 0.0;
  while (!state.done() && (opt.maxWaitSeconds <= 0.0 ||
                           waited < opt.maxWaitSeconds)) {
    std::this_thread::sleep_for(
        std::chrono::duration<double>(opt.pollSeconds));
    waited += opt.pollSeconds;
    if (drain()) {
      waited = 0.0;
      std::cerr << "\n" << state.render();
    }
  }
  std::ostringstream os;
  os << state.render();
  if (!state.done()) os << "tail: gave up waiting for run_end\n";
  return {state.done() ? 0 : 1, os.str()};
}

CommandResult cmdEventsSummarize(const std::string& eventsPath,
                                 const std::string& statsJsonPath) {
  std::ifstream in(eventsPath, std::ios::binary);
  if (!in.is_open()) {
    throw InputError("cannot open events file '" + eventsPath + "'");
  }
  obs::EventsSummary es = obs::summarizeEvents(in);
  std::ostringstream os;
  if (!statsJsonPath.empty()) {
    const json::Value stats = json::parse(readFileOrThrow(statsJsonPath));
    for (std::string& p : obs::reconcileWithStats(es, stats)) {
      es.problems.push_back("stats: " + p);
    }
  }
  os << es.formatText();
  return {es.ok() ? 0 : 1, os.str()};
}

CommandResult cmdVerifyRun(const std::string& manifestPath) {
  const obs::VerifyReport rep = obs::verifyRun(manifestPath);
  return {rep.ok() ? 0 : 1, rep.formatText()};
}

CommandResult dispatch(const std::vector<std::string>& args) {
  try {
    // ADLSYM_FAULTS arms a fault schedule for any command (CI smoke
    // tests); explore --inject overrides it for that run. The guard
    // disarms when dispatch returns or throws.
    const char* envFaults = std::getenv("ADLSYM_FAULTS");
    fault::ScopedArm envArm(envFaults != nullptr ? envFaults : "");
    if (args.empty() || args[0] == "help" || args[0] == "--help") {
      return {args.empty() ? 2 : 0, usage()};
    }
    const std::string& cmd = args[0];
    if (cmd == "isas") return cmdIsas();
    if (cmd == "model") {
      if (args.size() != 2) return fail("usage: adlsym model <isa>");
      return cmdModel(args[1]);
    }
    if (cmd == "lint") {
      LintOptions opt;
      std::vector<std::string> pos;
      for (size_t i = 1; i < args.size(); ++i) {
        if (args[i] == "--werror") {
          opt.werror = true;
        } else if (args[i] == "--format=json") {
          opt.json = true;
        } else if (args[i] == "--format=text") {
          opt.json = false;
        } else if (startsWith(args[i], "--stats-json=")) {
          opt.statsJsonPath = args[i].substr(13);
        } else if (startsWith(args[i], "--")) {
          return fail("unknown lint option '" + args[i] + "'");
        } else {
          pos.push_back(args[i]);
        }
      }
      if (pos.empty() || pos.size() > 2) {
        return fail(
            "usage: adlsym lint <isa|file.adl> [file.img] "
            "[--format=text|json] [--werror]");
      }
      if (pos.size() == 2) opt.imageText = readFileOrThrow(pos[1]);
      const auto names = isa::allIsaNames();
      const bool shipped =
          std::find(names.begin(), names.end(), pos[0]) != names.end();
      return cmdLint(pos[0],
                     shipped ? std::string(isa::isaSource(pos[0]))
                             : readFileOrThrow(pos[0]),
                     opt);
    }
    if (cmd == "asm") {
      if (args.size() != 3) return fail("usage: adlsym asm <isa> <file.s>");
      return cmdAsm(args[1], readFileOrThrow(args[2]));
    }
    if (cmd == "disasm") {
      if (args.size() != 3) return fail("usage: adlsym disasm <isa> <file.img>");
      return cmdDisasm(args[1], readFileOrThrow(args[2]));
    }
    if (cmd == "run") {
      if (args.size() < 3) return fail("usage: adlsym run <isa> <file.img> [inputs...]");
      std::vector<uint64_t> inputs;
      RunOptions ropt;
      for (size_t i = 3; i < args.size(); ++i) {
        if (startsWith(args[i], "--stats-json=")) {
          ropt.statsJsonPath = args[i].substr(13);
        } else if (startsWith(args[i], "--trace=")) {
          ropt.tracePath = args[i].substr(8);
        } else {
          const auto v = parseInt(args[i]);
          if (!v) return fail("bad input value '" + args[i] + "'");
          inputs.push_back(*v);
        }
      }
      return cmdRun(args[1], readFileOrThrow(args[2]), inputs, ropt);
    }
    if (cmd == "explore" || cmd == "profile") {
      if (args.size() < 3) {
        return fail("usage: adlsym " + cmd + " <isa> <file.img> [options]");
      }
      ExploreOptions opt;
      // `profile` is `explore` plus the cost-attribution tables on stdout;
      // it shares every explore option below.
      opt.profileStdout = cmd == "profile";
      opt.programLabel = args[2];
      for (size_t i = 3; i < args.size(); ++i) {
        if (args[i] == "--strategy" && i + 1 < args.size()) {
          opt.strategy = args[++i];
        } else if (args[i] == "--max-paths" && i + 1 < args.size()) {
          opt.maxPaths = parseInt(args[++i]).value_or(opt.maxPaths);
        } else if (args[i] == "--max-steps" && i + 1 < args.size()) {
          opt.maxTotalSteps = parseInt(args[++i]).value_or(opt.maxTotalSteps);
        } else if (args[i] == "--first-defect") {
          opt.stopAtFirstDefect = true;
        } else if (args[i] == "--merge") {
          opt.mergeStates = true;
        } else if (args[i] == "--coverage") {
          opt.coverageReport = true;
        } else if (args[i] == "--lint") {
          opt.lint = true;
        } else if (startsWith(args[i], "--stats-json=")) {
          opt.statsJsonPath = args[i].substr(13);
        } else if (startsWith(args[i], "--trace=")) {
          opt.tracePath = args[i].substr(8);
        } else if (startsWith(args[i], "--path-forest=")) {
          opt.pathForestPath = args[i].substr(14);
        } else if (startsWith(args[i], "--path-dot=")) {
          opt.pathDotPath = args[i].substr(11);
        } else if (startsWith(args[i], "--query-log=")) {
          opt.queryLogDir = args[i].substr(12);
        } else if (startsWith(args[i], "--profile=")) {
          opt.profilePath = args[i].substr(10);
        } else if (startsWith(args[i], "--profile-folded=")) {
          opt.profileFoldedPath = args[i].substr(17);
        } else if (startsWith(args[i], "--events=")) {
          opt.eventsPath = args[i].substr(9);
          if (opt.eventsPath.empty()) {
            return fail("bad --events (want a file path or '-')");
          }
        } else if (startsWith(args[i], "--events-snapshot=")) {
          const auto v = parseInt(args[i].substr(18));
          if (!v) return fail("bad --events-snapshot '" + args[i] + "'");
          opt.eventsSnapshotEvery = *v;
        } else if (startsWith(args[i], "--manifest=")) {
          opt.manifestPath = args[i].substr(11);
          if (opt.manifestPath.empty()) {
            return fail("bad --manifest (want a file path)");
          }
        } else if (args[i] == "--max-frontier" && i + 1 < args.size()) {
          const auto v = parseInt(args[++i]);
          if (!v || *v == 0) return fail("bad --max-frontier '" + args[i] + "'");
          opt.maxFrontier = *v;
        } else if (args[i] == "--mem-budget-mb" && i + 1 < args.size()) {
          const auto v = parseInt(args[++i]);
          if (!v || *v == 0) return fail("bad --mem-budget-mb '" + args[i] + "'");
          opt.memBudgetMb = *v;
        } else if (args[i] == "--solver-timeout-ms" && i + 1 < args.size()) {
          const auto v = parseInt(args[++i]);
          if (!v) return fail("bad --solver-timeout-ms '" + args[i] + "'");
          opt.solverTimeoutMs = *v;
        } else if (args[i] == "--max-wall-ms" && i + 1 < args.size()) {
          const auto v = parseInt(args[++i]);
          if (!v) return fail("bad --max-wall-ms '" + args[i] + "'");
          opt.maxWallMs = *v;
        } else if (startsWith(args[i], "--inject=")) {
          opt.injectSpec = args[i].substr(9);
        } else if (startsWith(args[i], "--checkpoint=")) {
          opt.checkpointPath = args[i].substr(13);
          if (opt.checkpointPath.empty()) {
            return fail("bad --checkpoint (want a file path)");
          }
        } else if (startsWith(args[i], "--checkpoint-every=")) {
          const auto v = parseInt(args[i].substr(19));
          if (!v || *v == 0) {
            return fail("bad --checkpoint-every '" + args[i] + "'");
          }
          opt.checkpointEverySteps = *v;
        } else if (startsWith(args[i], "--resume=")) {
          opt.resumePath = args[i].substr(9);
          if (opt.resumePath.empty()) {
            return fail("bad --resume (want a checkpoint file)");
          }
        } else if (args[i] == "--clock=manual") {
          opt.manualClockStepUs = 1;
        } else if (startsWith(args[i], "--clock=manual:")) {
          const auto v = parseInt(args[i].substr(15));
          if (!v || *v == 0) return fail("bad --clock step '" + args[i] + "'");
          opt.manualClockStepUs = *v;
        } else if ((args[i] == "--jobs" && i + 1 < args.size()) ||
                   startsWith(args[i], "--jobs=")) {
          const std::string v = startsWith(args[i], "--jobs=")
                                    ? args[i].substr(7)
                                    : args[++i];
          const auto n = parseInt(v);
          if (!n || *n == 0 || *n > 64) {
            return fail("bad --jobs count '" + v + "' (want 1..64)");
          }
          opt.jobs = *n;
        } else if (args[i] == "--prefilter=on") {
          opt.prefilterOn = true;
        } else if (args[i] == "--prefilter=off") {
          opt.prefilterOn = false;
        } else if (startsWith(args[i], "--prefilter=")) {
          return fail("bad --prefilter '" + args[i] + "' (want on|off)");
        } else if (args[i] == "--engine=bytecode" ||
                   args[i] == "--engine=interp") {
          opt.engine = args[i].substr(9);
        } else if (startsWith(args[i], "--engine=")) {
          return fail("bad --engine '" + args[i] +
                      "' (want bytecode|interp)");
        } else if (args[i] == "--qcache=on") {
          opt.qcacheOn = true;
          opt.qcacheCapacity = 0;
        } else if (args[i] == "--qcache=off") {
          opt.qcacheOn = false;
        } else if (startsWith(args[i], "--qcache=")) {
          const auto v = parseInt(args[i].substr(9));
          if (!v || *v == 0) return fail("bad --qcache '" + args[i] + "'");
          opt.qcacheOn = true;
          opt.qcacheCapacity = *v;
        } else if (args[i] == "--progress") {
          opt.progressSeconds = 1.0;
        } else if (startsWith(args[i], "--progress=")) {
          const std::string v = args[i].substr(11);
          char* end = nullptr;
          opt.progressSeconds = std::strtod(v.c_str(), &end);
          if (end == v.c_str() || *end != '\0' || opt.progressSeconds <= 0.0) {
            return fail("bad --progress interval '" + v + "'");
          }
        } else {
          return fail("unknown " + cmd + " option '" + args[i] + "'");
        }
      }
      opt.argvEcho = args;  // echoed into the --manifest document
      return cmdExplore(args[1], readFileOrThrow(args[2]), opt);
    }
    if (cmd == "replay") {
      if (args.size() != 2) return fail("usage: adlsym replay <query-dir>");
      return cmdReplay(args[1]);
    }
    if (cmd == "tail") {
      TailOptions topt;
      std::vector<std::string> pos;
      for (size_t i = 1; i < args.size(); ++i) {
        if (args[i] == "--no-follow") {
          topt.follow = false;
        } else if (startsWith(args[i], "--max-wait=")) {
          const std::string v = args[i].substr(11);
          char* end = nullptr;
          topt.maxWaitSeconds = std::strtod(v.c_str(), &end);
          if (end == v.c_str() || *end != '\0' || topt.maxWaitSeconds <= 0.0) {
            return fail("bad --max-wait '" + v + "'");
          }
        } else if (startsWith(args[i], "--")) {
          return fail("unknown tail option '" + args[i] + "'");
        } else {
          pos.push_back(args[i]);
        }
      }
      if (pos.size() != 1) {
        return fail(
            "usage: adlsym tail <events-file> [--no-follow] [--max-wait=S]");
      }
      return cmdTail(pos[0], topt);
    }
    if (cmd == "events") {
      if (args.size() < 3 || args[1] != "summarize") {
        return fail(
            "usage: adlsym events summarize <events-file> "
            "[--stats=<stats.json>]");
      }
      std::string eventsPath, statsPath;
      for (size_t i = 2; i < args.size(); ++i) {
        if (startsWith(args[i], "--stats=")) {
          statsPath = args[i].substr(8);
        } else if (startsWith(args[i], "--")) {
          return fail("unknown events option '" + args[i] + "'");
        } else if (eventsPath.empty()) {
          eventsPath = args[i];
        } else {
          return fail("extra events argument '" + args[i] + "'");
        }
      }
      if (eventsPath.empty()) {
        return fail(
            "usage: adlsym events summarize <events-file> "
            "[--stats=<stats.json>]");
      }
      return cmdEventsSummarize(eventsPath, statsPath);
    }
    if (cmd == "verify-run") {
      if (args.size() != 2) {
        return fail("usage: adlsym verify-run <manifest.json>");
      }
      return cmdVerifyRun(args[1]);
    }
    return fail("unknown command '" + cmd + "'\n" + usage());
  } catch (const fault::InjectedFault& e) {
    // Before InputError/Error: InjectedFault derives from Error.
    return {4, std::string("error: ") + e.what() + "\n"};
  } catch (const InputError& e) {
    return {2, std::string("error: ") + e.what() + "\n"};
  } catch (const std::bad_alloc&) {
    return {4, "error: out of memory\n"};
  } catch (const std::exception& e) {
    return {4, std::string("error: ") + e.what() + "\n"};
  }
}

}  // namespace adlsym::driver::cli
